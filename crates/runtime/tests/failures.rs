//! Failure injection on the injector itself: daemon crashes, dropped
//! notifications, dynamic entry.

use loki_core::campaign::ExperimentEnd;
use loki_core::fault::{FaultExpr, Trigger};
use loki_core::spec::{StateMachineSpec, StudyDef};
use loki_core::study::Study;
use loki_runtime::harness::{run_experiment, SimHarnessConfig};
use loki_runtime::AppFactory;
use loki_runtime::{App, NodeCtx, Payload};
use std::sync::Arc;

struct ShortLived {
    lifetime_ns: u64,
    notify_after_death_of: Option<String>,
}

impl App for ShortLived {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
        ctx.notify_event("RUN").unwrap();
        ctx.set_timer(self.lifetime_ns, 1);
        if self.notify_after_death_of.is_some() {
            ctx.set_timer(self.lifetime_ns / 2, 2);
        }
    }
    fn on_app_message(&mut self, _: &mut NodeCtx<'_>, _: loki_core::ids::SmId, _: Payload) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            1 => {
                let _ = ctx.notify_event("DONE");
                ctx.exit();
            }
            2 => {
                // Cycle through RUN -> PAUSE -> RUN; PAUSE's notify list
                // includes the (long-dead) peer, provoking the
                // notification-for-dead-machine warning path.
                let _ = ctx.notify_event("HOP");
                let _ = ctx.notify_event("BACK");
            }
            _ => {}
        }
    }
    fn on_fault(&mut self, _: &mut NodeCtx<'_>, _: &str) {}
}

#[test]
fn notification_to_dead_machine_is_dropped_with_warning() {
    // `b` dies quickly; `a` later enters a state whose notify list names
    // `b` — the daemon must drop the notification and record a warning
    // (§3.6.1).
    let def = StudyDef::new("s")
        .machine(
            StateMachineSpec::builder("a")
                .states(&["RUN", "PAUSE"])
                .events(&["HOP", "BACK", "DONE"])
                .state("RUN", &[], &[("HOP", "PAUSE"), ("DONE", "EXIT")])
                .state("PAUSE", &["b"], &[("BACK", "RUN")])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("b")
                .states(&["RUN"])
                .events(&["DONE"])
                .state("RUN", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .place("a", "host1")
        .place("b", "host2");
    let study = Study::compile_arc(&def).unwrap();
    let factory: AppFactory = Arc::new(|study: &Study, sm| -> Box<dyn App> {
        if study.sms.name(sm) == "a" {
            Box::new(ShortLived {
                lifetime_ns: 800_000_000,
                notify_after_death_of: Some("b".into()),
            })
        } else {
            Box::new(ShortLived {
                lifetime_ns: 100_000_000,
                notify_after_death_of: None,
            })
        }
    });
    let mut cfg = SimHarnessConfig::three_hosts(21);
    cfg.hosts.truncate(2);
    let data = run_experiment(&study, factory, &cfg, 0);
    assert_eq!(data.end, ExperimentEnd::Completed);
    assert!(
        data.warnings.iter().any(|w| w.contains("non-executing")),
        "expected a dropped-notification warning, got {:?}",
        data.warnings
    );
}

#[test]
fn dynamic_entry_machine_not_started_at_begin() {
    // A machine listed in the node file without a host is *not* started at
    // experiment begin (§3.5.1); the experiment completes without it, and
    // its timeline is absent.
    let def = StudyDef::new("s")
        .machine(
            StateMachineSpec::builder("a")
                .states(&["RUN"])
                .events(&["DONE"])
                .state("RUN", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("ghost")
                .states(&["RUN"])
                .events(&["DONE"])
                .state("RUN", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .fault("a", "f", FaultExpr::atom("ghost", "RUN"), Trigger::Once)
        .place("a", "host1")
        .dynamic("ghost");
    let study = Study::compile_arc(&def).unwrap();
    let factory: AppFactory = Arc::new(|_, _| {
        Box::new(ShortLived {
            lifetime_ns: 150_000_000,
            notify_after_death_of: None,
        }) as Box<dyn App>
    });
    let mut cfg = SimHarnessConfig::three_hosts(22);
    cfg.hosts.truncate(2);
    let data = run_experiment(&study, factory, &cfg, 0);
    assert_eq!(data.end, ExperimentEnd::Completed);
    assert!(data.timeline_for(study.sm_id("a").unwrap()).is_some());
    assert!(data.timeline_for(study.sm_id("ghost").unwrap()).is_none());
    // The fault on the never-started machine never fired.
    assert_eq!(data.total_injections(), 0);
}

#[test]
fn daemon_crash_aborts_the_experiment() {
    // Kill host2's local daemon mid-run: the central daemon detects the
    // broken connection and aborts (§3.5.1 / §3.6.4).
    let def = StudyDef::new("s")
        .machine(
            StateMachineSpec::builder("a")
                .states(&["RUN"])
                .events(&["DONE"])
                .state("RUN", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("b")
                .states(&["RUN"])
                .events(&["DONE"])
                .state("RUN", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .place("a", "host1")
        .place("b", "host2");
    let study = Study::compile_arc(&def).unwrap();
    let factory: AppFactory = Arc::new(|_, _| {
        Box::new(ShortLived {
            lifetime_ns: 500_000_000,
            notify_after_death_of: None,
        }) as Box<dyn App>
    });
    let mut cfg = SimHarnessConfig::three_hosts(23);
    cfg.hosts.truncate(2);
    cfg.kill_daemon = Some((1, 100_000_000)); // host2's daemon dies at +100 ms
    let data = run_experiment(&study, factory, &cfg, 0);
    assert_eq!(data.end, ExperimentEnd::Aborted);
}
