//! Many-worlds batching: K independent simulations interleaved on one
//! thread.
//!
//! A Loki campaign needs thousands of experiments for statistical
//! confidence, and each experiment is an *independent* deterministic
//! simulation. Running them strictly one-after-another leaves an easy win
//! on the table: construction and teardown dominate small experiments,
//! and the event loop's working set falls out of cache between them. The
//! FoundationDB-style answer (also used by neon's `desim`) is to keep
//! **many worlds in one process**: a [`WorldSet`] holds K simulations
//! that `Arc`-share one immutable [`WorldConfig`](crate::engine::WorldConfig)
//! and interleaves their
//! event loops on a single thread, always stepping the world whose next
//! event is earliest.
//!
//! ```text
//!             Arc<WorldConfig>  (hosts, clocks, topology — immutable)
//!                 ╱    │    ╲
//!          ┌─────┘     │     └─────┐
//!     Simulation  Simulation  Simulation     per-world mutable state:
//!      (world 0)   (world 1)   (world 2)     event slab, timer slab,
//!          │           │           │         watchers, FIFO, RNG
//!          └─────┬─────┴─────┬─────┘
//!           next_times: [t₀, t₁, t₂]         ← struct-of-arrays keys
//!                        │
//!               step_earliest(): argmin over next_times,
//!               then one Simulation::step() on that world
//! ```
//!
//! Because the worlds are independent (separate RNGs, separate event
//! queues), the interleaving order cannot change any world's behaviour:
//! each world sees exactly the event sequence it would see running alone.
//! [`WorldSet::step_earliest`] is therefore a pure throughput device — it
//! keeps the scheduling keys dense (one `u64` per world, `u64::MAX` for a
//! drained world) so the argmin scan stays in one or two cache lines,
//! while worlds that finished early cost nothing. The equivalence is
//! pinned by a proptest in `crates/sim/tests/prop_sim.rs`.
//!
//! Worlds are meant to be *reused*: drive one to completion, then
//! [`WorldSet::with_world_mut`] + [`Simulation::reset`] rewinds it for
//! the next experiment while keeping its slab allocations — the
//! steady-state of a campaign allocates almost nothing per experiment.

use crate::engine::Simulation;

/// The scheduling key of a world with no pending events.
const DRAINED: u64 = u64::MAX;

/// Lookahead slack for [`WorldSet::run_earliest`]: the chosen world runs
/// events up to `second_earliest + SLACK_NS` before the set re-evaluates
/// which world is earliest. Worlds of one batch tend to run in near
/// lockstep (same configuration, seeds apart), so a zero-slack policy
/// would bounce between worlds every event or two and churn the cache.
/// Any fixed value yields identical results — worlds never interact — so
/// this is purely a throughput knob. A sweep on the `batched_worlds`
/// workload showed every setting from 0 to unbounded within measurement
/// noise (experiments are small enough that either way each burst covers
/// most of a phase), so the slack saturates: the chosen world runs its
/// whole phase, paying the argmin scan only at phase boundaries.
const SLACK_NS: u64 = u64::MAX;

/// A batch of independent simulations stepped in earliest-next-event
/// order on one thread.
///
/// # Examples
///
/// ```
/// use loki_sim::batch::WorldSet;
/// use loki_sim::config::HostConfig;
/// use loki_sim::engine::{Actor, ActorId, Ctx, Simulation, WorldConfig};
/// use std::sync::Arc;
///
/// struct Tick;
/// impl Actor<()> for Tick {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
///         ctx.set_timer(1_000, 0);
///     }
///     fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ActorId, _: ()) {}
/// }
///
/// // One shared world description, four independent worlds.
/// let mut config = WorldConfig::new();
/// let host = config.add_host(HostConfig::new("h1")).unwrap();
/// let config = Arc::new(config);
///
/// let mut set = WorldSet::new();
/// for seed in 0..4 {
///     let idx = set.push(Simulation::with_config(config.clone(), seed));
///     set.with_world_mut(idx, |sim| {
///         sim.spawn(host, Box::new(Tick));
///     });
/// }
/// set.run();
/// assert!((0..4).all(|i| set.drained(i)));
/// assert_eq!(set.world(3).now(), 1_000);
/// ```
pub struct WorldSet<M> {
    worlds: Vec<Simulation<M>>,
    /// Cached next-event time per world ([`DRAINED`] when its queue is
    /// empty), kept as a separate dense array so the argmin scan of
    /// [`WorldSet::step_earliest`] reads K `u64`s instead of touching K
    /// simulations.
    next_times: Vec<u64>,
}

impl<M: 'static> WorldSet<M> {
    /// Creates an empty set.
    pub fn new() -> Self {
        WorldSet {
            worlds: Vec::new(),
            next_times: Vec::new(),
        }
    }

    /// Creates an empty set with room for `k` worlds.
    pub fn with_capacity(k: usize) -> Self {
        WorldSet {
            worlds: Vec::with_capacity(k),
            next_times: Vec::with_capacity(k),
        }
    }

    /// Adds a world to the set; returns its index.
    pub fn push(&mut self, world: Simulation<M>) -> usize {
        let idx = self.worlds.len();
        self.next_times
            .push(world.next_event_time().unwrap_or(DRAINED));
        self.worlds.push(world);
        idx
    }

    /// Number of worlds in the set.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether the set holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Read access to a world.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn world(&self, idx: usize) -> &Simulation<M> {
        &self.worlds[idx]
    }

    /// Whether world `idx`'s event queue has drained.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn drained(&self, idx: usize) -> bool {
        self.next_times[idx] == DRAINED
    }

    /// Replaces world `idx` with `world`, refreshing its scheduling key.
    /// The previous world is dropped. This is the quarantine primitive: a
    /// harness that caught a panic out of a world — or saw it trip a
    /// containment budget — swaps in a slot rebuilt fresh from the shared
    /// [`WorldConfig`](crate::engine::WorldConfig) instead of trusting
    /// [`Simulation::reset`] on state a panic may have left half-mutated.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn replace(&mut self, idx: usize, world: Simulation<M>) {
        self.next_times[idx] = world.next_event_time().unwrap_or(DRAINED);
        self.worlds[idx] = world;
    }

    /// Mutates a world through `f` and refreshes its cached scheduling
    /// key afterwards. All mutation (spawning actors, [`Simulation::reset`]
    /// between experiments) must go through here — mutating a world
    /// behind the set's back would leave the key stale.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn with_world_mut<R>(&mut self, idx: usize, f: impl FnOnce(&mut Simulation<M>) -> R) -> R {
        let result = f(&mut self.worlds[idx]);
        self.next_times[idx] = self.worlds[idx].next_event_time().unwrap_or(DRAINED);
        result
    }

    /// Processes one event on the world whose next event is earliest
    /// (ties resolve to the lowest index, keeping the interleaving
    /// deterministic) and returns that world's index; `None` when every
    /// world has drained.
    ///
    /// The caller typically checks [`WorldSet::drained`] on the returned
    /// index to detect a world hitting a phase boundary.
    pub fn step_earliest(&mut self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (idx, &t) in self.next_times.iter().enumerate() {
            if t == DRAINED {
                continue;
            }
            match best {
                Some((best_t, _)) if best_t <= t => {}
                _ => best = Some((t, idx)),
            }
        }
        let (_, idx) = best?;
        self.worlds[idx].step();
        self.next_times[idx] = self.worlds[idx].next_event_time().unwrap_or(DRAINED);
        Some(idx)
    }

    /// Runs the earliest world in a *burst*: processes every event of the
    /// world with the earliest next event up to (and including) the
    /// second-earliest world's horizon plus a small fixed lookahead
    /// slack, then returns that world's index; `None` when every world
    /// has drained. Ties resolve to the lowest index, like
    /// [`WorldSet::step_earliest`].
    ///
    /// Because worlds are independent, bursting is behaviour-identical to
    /// stepping one event at a time — it just pays the argmin scan once
    /// per burst instead of once per event and keeps one world's slabs
    /// cache-hot for the whole burst (with one live world left, a single
    /// burst runs it to completion). The caller checks
    /// [`WorldSet::drained`] on the returned index, exactly as with
    /// `step_earliest`.
    pub fn run_earliest(&mut self) -> Option<usize> {
        let (best, horizon) = self.earliest()?;
        self.run_world(best, horizon);
        Some(best)
    }

    /// The scheduling decision [`WorldSet::run_earliest`] would make,
    /// without running anything: the index of the world whose next event
    /// is earliest plus the burst horizon it would run to; `None` when
    /// every world has drained. Split out so a harness can bracket the
    /// actual burst ([`WorldSet::run_world`]) with its own containment —
    /// catching a panic out of the burst, it knows exactly which world is
    /// poisoned and can [`WorldSet::replace`] it.
    pub fn earliest(&self) -> Option<(usize, u64)> {
        let mut best_t = DRAINED;
        let mut best = usize::MAX;
        let mut second = DRAINED;
        for (idx, &t) in self.next_times.iter().enumerate() {
            // Drained worlds (t == DRAINED) fail both tests and drop out.
            if t < best_t {
                second = best_t;
                best_t = t;
                best = idx;
            } else if t < second {
                second = t;
            }
        }
        if best == usize::MAX {
            return None;
        }
        Some((best, second.saturating_add(SLACK_NS)))
    }

    /// Bursts world `idx` up to `horizon` and refreshes its scheduling
    /// key ([`WorldSet::run_earliest`] is [`WorldSet::earliest`] followed
    /// by this).
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    pub fn run_world(&mut self, idx: usize, horizon: u64) {
        self.worlds[idx].run_ready(horizon);
        self.next_times[idx] = self.worlds[idx].next_event_time().unwrap_or(DRAINED);
    }

    /// Runs every world to completion, interleaved in earliest-event
    /// order.
    pub fn run(&mut self) {
        while self.run_earliest().is_some() {}
    }
}

impl<M: 'static> Default for WorldSet<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HostConfig;
    use crate::engine::{Actor, ActorId, Ctx, WorldConfig};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;

    /// Ping-pongs with itself via timers and logs every firing.
    struct Clockwork {
        period: u64,
        remaining: u32,
        log: Rc<RefCell<Vec<u64>>>,
    }
    impl Actor<()> for Clockwork {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: ActorId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _tag: u64) {
            self.log.borrow_mut().push(ctx.physical_now());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(self.period, 0);
            }
        }
    }

    fn world_with(
        config: &Arc<WorldConfig>,
        seed: u64,
        period: u64,
    ) -> (Simulation<()>, Rc<RefCell<Vec<u64>>>) {
        let mut sim = Simulation::with_config(config.clone(), seed);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            crate::engine::HostId(0),
            Box::new(Clockwork {
                period,
                remaining: 5,
                log: log.clone(),
            }),
        );
        (sim, log)
    }

    fn one_host_config() -> Arc<WorldConfig> {
        let mut config = WorldConfig::new();
        config.add_host(HostConfig::new("h1")).unwrap();
        Arc::new(config)
    }

    #[test]
    fn interleaved_worlds_match_isolated_runs() {
        let config = one_host_config();
        // Staggered periods force constant lead changes in the argmin.
        let isolated: Vec<_> = (0..4u64)
            .map(|i| {
                let (mut sim, log) = world_with(&config, i, 700 + i * 130);
                sim.run();
                let fired = log.borrow().clone();
                (sim.now(), fired)
            })
            .collect();

        let mut set = WorldSet::new();
        let logs: Vec<_> = (0..4u64)
            .map(|i| {
                let (sim, log) = world_with(&config, i, 700 + i * 130);
                set.push(sim);
                log
            })
            .collect();
        set.run();
        for (i, log) in logs.iter().enumerate() {
            assert!(set.drained(i));
            assert_eq!(
                (set.world(i).now(), log.borrow().clone()),
                isolated[i],
                "world {i} diverged under interleaving"
            );
        }
    }

    #[test]
    fn step_earliest_breaks_ties_on_lowest_index() {
        let config = one_host_config();
        let mut set = WorldSet::new();
        for seed in 0..3u64 {
            let (sim, _log) = world_with(&config, seed, 1_000); // identical schedules
            set.push(sim);
        }
        // Every world has its Start event queued at time 0: three steps
        // must visit worlds 0, 1, 2 in order.
        let order: Vec<_> = (0..3).map(|_| set.step_earliest().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn reused_worlds_replay_after_reset() {
        let config = one_host_config();
        let (sim, first_log) = world_with(&config, 9, 500);
        let mut set = WorldSet::new();
        let idx = set.push(sim);
        set.run();
        let first = (set.world(idx).now(), first_log.borrow().clone());

        // Rewind the same world in place and rerun the same schedule.
        let second_log = set.with_world_mut(idx, |sim| {
            sim.reset(9);
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.spawn(
                crate::engine::HostId(0),
                Box::new(Clockwork {
                    period: 500,
                    remaining: 5,
                    log: log.clone(),
                }),
            );
            log
        });
        assert!(!set.drained(idx), "reset + spawn must refresh the key");
        set.run();
        assert_eq!((set.world(idx).now(), second_log.borrow().clone()), first);
    }
}
