//! Simulation configuration: hosts, links, and the OS scheduling model.
//!
//! The thesis's performance analysis (§3.2.2) found that Loki's injection
//! accuracy is dominated by the *OS context-switching overhead incurred
//! during the sending and receiving of a notification message* — roughly a
//! couple of OS timeslices — while raw network and injection overheads are
//! minimal. The simulator therefore models, for every message:
//!
//! ```text
//! delay = sched(sender host) + link latency + sched(receiver host)
//! ```
//!
//! where `sched(h)` samples a dispatch delay uniform in `[0, timeslice]` of
//! host `h` (zero when the host's timeslice is zero), and the link latency
//! is IPC-like within a host (~20 µs) and TCP-like across hosts (~150 µs),
//! the figures used in the design comparison of §3.4.2.

use loki_clock::params::ClockParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-way link latency model: `base + U(0, jitter)` nanoseconds.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed component in nanoseconds.
    pub base_ns: u64,
    /// Uniform jitter bound in nanoseconds.
    pub jitter_ns: u64,
}

impl LatencyModel {
    /// A constant-latency model.
    pub fn constant(base_ns: u64) -> Self {
        LatencyModel {
            base_ns,
            jitter_ns: 0,
        }
    }

    /// Samples one latency.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.jitter_ns == 0 {
            self.base_ns
        } else {
            self.base_ns + rng.gen_range(0..=self.jitter_ns)
        }
    }
}

/// Network-wide latency configuration.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Same-host (shared-memory/IPC) latency; the thesis quotes ~20 µs.
    pub ipc: LatencyModel,
    /// Cross-host (TCP/IP on a LAN) latency; the thesis quotes ~150 µs.
    pub tcp: LatencyModel,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            ipc: LatencyModel {
                base_ns: 20_000,
                jitter_ns: 5_000,
            },
            tcp: LatencyModel {
                base_ns: 150_000,
                jitter_ns: 50_000,
            },
        }
    }
}

/// Configuration of one simulated host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Host name (used in timelines and sync records).
    pub name: String,
    /// The host's clock model.
    pub clock: ClockParams,
    /// OS scheduler timeslice in nanoseconds; message endpoints incur a
    /// dispatch delay uniform in `[0, timeslice]`. Zero disables scheduling
    /// delay.
    pub timeslice_ns: u64,
    /// Crash-detection latency: how long after a process dies its local
    /// observers (daemons holding an IPC connection) are notified.
    pub crash_detect_ns: u64,
}

impl HostConfig {
    /// A host with an ideal clock and a 10 ms timeslice (the thesis's
    /// default Linux kernel).
    pub fn new(name: &str) -> Self {
        HostConfig {
            name: name.to_owned(),
            clock: ClockParams::ideal(),
            timeslice_ns: 10_000_000,
            crash_detect_ns: 50_000,
        }
    }

    /// Sets the clock model.
    pub fn clock(mut self, clock: ClockParams) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the scheduler timeslice (ns).
    pub fn timeslice_ns(mut self, timeslice_ns: u64) -> Self {
        self.timeslice_ns = timeslice_ns;
        self
    }

    /// Sets the crash-detection latency (ns).
    pub fn crash_detect_ns(mut self, crash_detect_ns: u64) -> Self {
        self.crash_detect_ns = crash_detect_ns;
        self
    }

    /// Samples a dispatch (scheduling) delay for this host.
    pub fn sched_delay(&self, rng: &mut impl Rng) -> u64 {
        if self.timeslice_ns == 0 {
            0
        } else {
            rng.gen_range(0..=self.timeslice_ns)
        }
    }
}

/// Samples the sender- and receiver-side dispatch delays of one message
/// from a **single** RNG word: each 32-bit half maps onto `[0, timeslice]`
/// by multiply-shift. Every message send pays this on the hot path, so
/// halving the generator calls is a measurable per-event cut.
///
/// The multiply-shift map carries a uniformity bias of at most
/// `(timeslice+1)/2^32` per value — under 0.25% at the default 10 ms
/// timeslice, far below the realism of the scheduling model itself.
/// Timeslices that don't fit the lane trick (≥ `u32::MAX` ns ≈ 4.3 s) fall
/// back to two exact full-width draws.
pub fn sched_delay_pair(from: &HostConfig, to: &HostConfig, rng: &mut impl Rng) -> (u64, u64) {
    let (a, b) = (from.timeslice_ns, to.timeslice_ns);
    if a == 0 && b == 0 {
        return (0, 0);
    }
    if a >= u32::MAX as u64 || b >= u32::MAX as u64 {
        return (from.sched_delay(rng), to.sched_delay(rng));
    }
    let word = rng.next_u64();
    (
        lane_delay(word as u32, a),
        lane_delay((word >> 32) as u32, b),
    )
}

/// Maps one 32-bit lane onto `[0, timeslice_ns]` (multiply-shift).
#[inline]
fn lane_delay(lane: u32, timeslice_ns: u64) -> u64 {
    if timeslice_ns == 0 {
        0
    } else {
        (lane as u64 * (timeslice_ns + 1)) >> 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latency_sampling_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel {
            base_ns: 100,
            jitter_ns: 50,
        };
        for _ in 0..100 {
            let v = m.sample(&mut rng);
            assert!((100..=150).contains(&v));
        }
        assert_eq!(LatencyModel::constant(7).sample(&mut rng), 7);
    }

    #[test]
    fn zero_jitter_sampling_draws_nothing_from_the_rng() {
        // The constant-latency fast path must not consume RNG state:
        // identically-seeded generators stay in lockstep whether or not a
        // zero-jitter model was sampled in between. Campaign determinism
        // (byte-identical replays across worker/batch splits) leans on
        // this — an extra draw would shift every later decision.
        use rand::RngCore;
        let mut sampled = StdRng::seed_from_u64(42);
        let mut untouched = StdRng::seed_from_u64(42);
        let m = LatencyModel::constant(150_000);
        for _ in 0..8 {
            assert_eq!(m.sample(&mut sampled), 150_000);
        }
        for _ in 0..4 {
            assert_eq!(sampled.next_u64(), untouched.next_u64());
        }
    }

    #[test]
    fn sched_delay_bounded_by_timeslice() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = HostConfig::new("h").timeslice_ns(1_000_000);
        for _ in 0..100 {
            assert!(h.sched_delay(&mut rng) <= 1_000_000);
        }
        let h0 = HostConfig::new("h").timeslice_ns(0);
        assert_eq!(h0.sched_delay(&mut rng), 0);
    }

    #[test]
    fn sched_delay_pair_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = HostConfig::new("a").timeslice_ns(1_000_000);
        let b = HostConfig::new("b").timeslice_ns(2_000_000);
        for _ in 0..200 {
            let (da, db) = sched_delay_pair(&a, &b, &mut rng);
            assert!(da <= 1_000_000);
            assert!(db <= 2_000_000);
        }
        // Zero timeslices stay exactly zero, alone and mixed.
        let z = HostConfig::new("z").timeslice_ns(0);
        assert_eq!(sched_delay_pair(&z, &z, &mut rng), (0, 0));
        let (dz, db) = sched_delay_pair(&z, &b, &mut rng);
        assert_eq!(dz, 0);
        assert!(db <= 2_000_000);
        // Oversized timeslices take the exact fallback and stay bounded.
        let wide = HostConfig::new("w").timeslice_ns(u64::from(u32::MAX) + 7);
        let (dw, db) = sched_delay_pair(&wide, &b, &mut rng);
        assert!(dw <= wide.timeslice_ns);
        assert!(db <= 2_000_000);
    }

    #[test]
    fn defaults_match_thesis_figures() {
        let n = NetworkConfig::default();
        assert_eq!(n.ipc.base_ns, 20_000); // ~20 µs IPC
        assert_eq!(n.tcp.base_ns, 150_000); // ~150 µs TCP
        let h = HostConfig::new("h");
        assert_eq!(h.timeslice_ns, 10_000_000); // 10 ms Linux timeslice
    }
}
