//! The deterministic discrete-event engine: actors, messages, timers,
//! crashes.
//!
//! Components (daemons, nodes) are [`Actor`]s placed on simulated hosts.
//! They exchange typed messages with realistic delays (link latency plus
//! per-endpoint OS scheduling delay), set timers, watch each other for
//! crashes, and read their host's drifting virtual clock. Execution is
//! fully deterministic for a given seed: the event queue is ordered by
//! `(time, sequence number)` and all randomness flows from one seeded RNG.
//!
//! # Event-core internals
//!
//! The steady-state event loop does no hashing and no per-event
//! allocation:
//!
//! * the pending-event queue is an **index heap**
//!   ([`crate::queue::EventQueue`]): the binary heap orders packed
//!   `(time, seq, slot)` keys while event bodies park in a recycled slab,
//!   so sifts never move message payloads;
//! * timers are **generation-stamped slots**
//!   ([`crate::queue::TimerSlab`]): cancel is one array write and the
//!   pop-side liveness check one integer compare — no tombstone set that
//!   grows with cancel traffic;
//! * per-actor state is **dense**: watcher lists are a vector of inline
//!   small-vectors ([`loki_core::small::InlineVec`]) indexed by the
//!   watched actor, and FIFO horizons are per-sender sorted vectors
//!   binary-searched by receiver (senders talk to few peers, so the probe
//!   touches one or two cache lines; an open-addressed `(from, to)` map
//!   benched no better and costs the memory of its empty slots).
//!
//! Pop order remains total on `(time, seq)` with `seq` assigned at push —
//! byte-identical to the previous full-payload heap, as pinned by the
//! model-equivalence proptest in `tests/prop_sim.rs` and the repo-level
//! determinism suites.

use crate::config::{HostConfig, NetworkConfig};
use crate::netfault::{NetFaultError, NetFaultPlane};
use crate::queue::{EventQueue, TimerKey, TimerSlab};
use loki_clock::params::VirtualClock;
use loki_core::probe::FaultAction;
use loki_core::small::InlineVec;
use loki_core::time::LocalNanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies a simulated host.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifies an actor (a simulated process).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

/// Identifies a timer set by an actor.
///
/// The raw value encodes the timer's slab slot and the generation it was
/// armed under (see [`crate::queue::TimerSlab`]); backend-agnostic timer
/// handles embed it opaquely via [`TimerId::raw`]/[`TimerId::from_raw`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    /// The raw id (for embedding into backend-agnostic timer handles).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuilds a timer id from [`TimerId::raw`].
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }
}

/// Why a watched peer went down.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DownReason {
    /// The peer crashed (killed or crashed itself).
    Crash,
    /// The peer exited cleanly.
    Exit,
}

/// A simulated process. `M` is the application-defined message type.
///
/// All callbacks receive a [`Ctx`] granting access to the clock, messaging,
/// timers, spawning, and the RNG. Callbacks run to completion at one
/// simulation instant (computation time can be modelled explicitly with
/// timers if needed).
pub trait Actor<M> {
    /// Called once when the actor starts (at its spawn instant).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when a peer watched via [`Ctx::watch`] dies.
    fn on_peer_down(&mut self, ctx: &mut Ctx<'_, M>, peer: ActorId, reason: DownReason) {
        let _ = (ctx, peer, reason);
    }

    /// Downcast hook for harnesses that recycle dead actors (see
    /// [`Simulation::set_reclaim_dead`]): return `Some(self)` to let a
    /// pool identify this actor's concrete type and reuse its allocation.
    /// The default `None` opts out — such corpses are dropped as usual.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

enum Event<M> {
    Start {
        actor: ActorId,
    },
    Deliver {
        to: ActorId,
        from: ActorId,
        msg: M,
    },
    Timer {
        actor: ActorId,
        id: TimerId,
        tag: u64,
    },
    PeerDown {
        observer: ActorId,
        dead: ActorId,
        reason: DownReason,
    },
}

/// One entry of the simulation trace (for debugging and tests).
#[derive(Clone, Debug)]
pub enum TraceEntry {
    /// An actor was spawned on a host.
    Spawn {
        /// Simulation time (physical ns).
        time: u64,
        /// The new actor.
        actor: ActorId,
        /// Its host.
        host: HostId,
    },
    /// An actor died.
    Down {
        /// Simulation time (physical ns).
        time: u64,
        /// The dead actor.
        actor: ActorId,
        /// Crash or clean exit.
        reason: DownReason,
    },
    /// A message was delivered.
    Deliver {
        /// Simulation time (physical ns).
        time: u64,
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
    },
}

/// Inline capacity of a watcher list: almost every watched actor (a node)
/// has exactly one watcher, its local daemon.
const WATCHERS_INLINE: usize = 4;

/// A host name was registered twice.
///
/// Placements and [`Ctx::find_host`] resolve hosts by name, so a
/// duplicate would silently shadow the second host; registration rejects
/// it instead. Returned by [`WorldConfig::add_host`] and
/// [`Simulation::try_add_host`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuplicateHost {
    /// The name that was registered twice.
    pub name: String,
}

impl fmt::Display for DuplicateHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duplicate host name {:?}: every simulated host needs a unique name \
             (placements resolve hosts by name)",
            self.name
        )
    }
}

impl std::error::Error for DuplicateHost {}

/// The immutable world description: host configurations, their virtual
/// clocks, the name → index map, and the network latency models.
///
/// Everything here is fixed for the lifetime of an experiment and — by
/// the engine's determinism contract — identical for every experiment of
/// a study, so a campaign builds one `WorldConfig` and `Arc`-shares it
/// across all its simulations ([`Simulation::with_config`]). The
/// per-world mutable state (event slab, timer slab, watcher/FIFO state,
/// RNG) stays in [`Simulation`], which makes a world cheap enough to hold
/// many of at once — the basis of [`crate::batch::WorldSet`].
///
/// [`VirtualClock`]s live here rather than in the per-world state because
/// they are pure functions of their [`loki_clock::params::ClockParams`]
/// and the current simulation time — reading one mutates nothing.
#[derive(Clone, Debug, Default)]
pub struct WorldConfig {
    hosts: Vec<HostConfig>,
    /// Name → host index, so [`Ctx::find_host`] is O(1) instead of a
    /// linear scan.
    host_index: HashMap<String, u32>,
    clocks: Vec<VirtualClock>,
    network: NetworkConfig,
}

impl WorldConfig {
    /// Creates an empty world description with the default network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host; returns its id. Host ids are dense and assigned in
    /// registration order.
    pub fn add_host(&mut self, config: HostConfig) -> Result<HostId, DuplicateHost> {
        let id = HostId(self.hosts.len() as u32);
        match self.host_index.entry(config.name.clone()) {
            Entry::Occupied(_) => return Err(DuplicateHost { name: config.name }),
            Entry::Vacant(vacant) => {
                vacant.insert(id.0);
            }
        }
        self.clocks.push(VirtualClock::new(config.clock));
        self.hosts.push(config);
        Ok(id)
    }

    /// Replaces the network latency configuration.
    pub fn set_network(&mut self, network: NetworkConfig) {
        self.network = network;
    }

    /// The network latency configuration.
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// Host configuration lookup.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not part of this world.
    pub fn host(&self, host: HostId) -> &HostConfig {
        &self.hosts[host.0 as usize]
    }

    /// The hosts in registration (= id) order.
    pub fn hosts(&self) -> &[HostConfig] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Looks up a host id by name (O(1)).
    pub fn find_host(&self, name: &str) -> Option<HostId> {
        self.host_index.get(name).map(|&i| HostId(i))
    }
}

/// Which per-experiment containment budget a world exhausted (see
/// [`Simulation::set_budget`]). A tripped world refuses further events
/// and reads as drained to its driver; the harness maps this into a
/// typed experiment failure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The virtual-time ceiling was passed: the next pending event was
    /// scheduled after the allowed horizon.
    VirtualTime,
    /// The event-count ceiling was reached.
    Events,
}

/// The discrete-event simulation.
///
/// # Examples
///
/// ```
/// use loki_sim::config::HostConfig;
/// use loki_sim::engine::{Actor, ActorId, Ctx, Simulation};
///
/// struct Echo;
/// impl Actor<String> for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, String>, from: ActorId, msg: String) {
///         if msg == "ping" {
///             ctx.send(from, "pong".to_owned());
///         }
///     }
/// }
///
/// struct Probe { echoed: bool }
/// impl Actor<String> for Probe {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, String>) {
///         ctx.send(ActorId(0), "ping".to_owned());
///     }
///     fn on_message(&mut self, _ctx: &mut Ctx<'_, String>, _from: ActorId, msg: String) {
///         assert_eq!(msg, "pong");
///         self.echoed = true;
///     }
/// }
///
/// let mut sim = Simulation::new(42);
/// let h = sim.add_host(HostConfig::new("h1"));
/// sim.spawn(h, Box::new(Echo));
/// sim.spawn(h, Box::new(Probe { echoed: false }));
/// sim.run();
/// assert!(sim.now() > 0); // messages took simulated time
/// ```
pub struct Simulation<M> {
    /// The shared immutable world description (hosts, clocks, network).
    /// `Arc`-shared across a batch; the legacy mutating builders
    /// ([`Simulation::add_host`], [`Simulation::set_network`]) copy on
    /// write when the description is actually shared.
    config: Arc<WorldConfig>,
    time: u64,
    queue: EventQueue<Event<M>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    actor_hosts: Vec<HostId>,
    alive: Vec<bool>,
    /// Watcher lists, indexed by the *watched* actor. Dense and inline:
    /// registering and draining never hashes, and the common
    /// single-watcher case never allocates.
    watchers: Vec<InlineVec<ActorId, WATCHERS_INLINE>>,
    /// Per-sender FIFO horizons: `(receiver, last delivery time)` sorted
    /// by receiver, binary-searched per send. Kept at its high-water
    /// length across [`Simulation::reset`] so re-spawned actors reuse the
    /// inner allocations.
    fifo_out: Vec<Vec<(u32, u64)>>,
    timers: TimerSlab,
    sched_enabled: bool,
    rng: StdRng,
    trace: Vec<TraceEntry>,
    trace_enabled: bool,
    max_events: u64,
    events_processed: u64,
    /// Per-experiment containment budgets (see [`Simulation::set_budget`]).
    /// `budget_armed` is the single branch the disarmed hot path pays;
    /// the ceilings and trip record are touched only when armed.
    budget_armed: bool,
    budget_virtual_ns: u64,
    budget_events: u64,
    budget_tripped: Option<BudgetExceeded>,
    /// When enabled, killed actors' boxes are parked in `graveyard`
    /// instead of dropped, for the harness to drain and recycle.
    reclaim_dead: bool,
    graveyard: Vec<Box<dyn Actor<M>>>,
    /// The dynamic network fault plane, layered over the immutable
    /// `config` network. Inactive (one branch, zero extra RNG draws on
    /// the send path) until a net [`FaultAction`] arms it.
    net_faults: NetFaultPlane,
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_config(Arc::new(WorldConfig::new()), seed)
    }

    /// Creates a simulation over an existing — typically shared — world
    /// description. The simulation holds only its compact mutable state;
    /// a campaign batch `Arc`-shares one [`WorldConfig`] across all its
    /// worlds.
    pub fn with_config(config: Arc<WorldConfig>, seed: u64) -> Self {
        Simulation {
            config,
            time: 0,
            queue: EventQueue::new(),
            actors: Vec::new(),
            actor_hosts: Vec::new(),
            alive: Vec::new(),
            watchers: Vec::new(),
            fifo_out: Vec::new(),
            timers: TimerSlab::new(),
            sched_enabled: true,
            rng: StdRng::seed_from_u64(seed),
            trace: Vec::new(),
            trace_enabled: true,
            max_events: 50_000_000,
            events_processed: 0,
            budget_armed: false,
            budget_virtual_ns: u64::MAX,
            budget_events: u64::MAX,
            budget_tripped: None,
            reclaim_dead: false,
            graveyard: Vec::new(),
            net_faults: NetFaultPlane::new(),
        }
    }

    /// Rewinds the world to its pristine state under a new seed while
    /// keeping every allocation: the event slab, timer slab, watcher
    /// lists, FIFO horizons, and trace buffer all retain their high-water
    /// capacity, so a world reused across experiments stops allocating
    /// once the first experiment has sized it.
    ///
    /// After a reset the world is observationally identical to
    /// `Simulation::with_config(config, seed)` — same hosts (they live in
    /// the shared config), same RNG stream, trace collection re-enabled,
    /// scheduling delays re-enabled — except that the event cap set via
    /// [`Simulation::set_max_events`] is kept (it guards each run).
    /// Containment budgets ([`Simulation::set_budget`]) are *disarmed*:
    /// they are per-experiment, so a harness reusing the world re-arms
    /// them after every reset.
    pub fn reset(&mut self, seed: u64) {
        self.time = 0;
        self.queue.reset();
        self.timers.reset();
        self.actors.clear();
        self.actor_hosts.clear();
        self.alive.clear();
        for watchers in &mut self.watchers {
            watchers.clear();
        }
        for horizons in &mut self.fifo_out {
            horizons.clear();
        }
        self.sched_enabled = true;
        self.rng = StdRng::seed_from_u64(seed);
        self.trace.clear();
        self.trace_enabled = true;
        self.events_processed = 0;
        self.budget_armed = false;
        self.budget_virtual_ns = u64::MAX;
        self.budget_events = u64::MAX;
        self.budget_tripped = None;
        self.reclaim_dead = false;
        self.graveyard.clear();
        self.net_faults.reset();
    }

    /// The world description this simulation runs over.
    pub fn world_config(&self) -> &Arc<WorldConfig> {
        &self.config
    }

    /// Replaces the network latency configuration.
    ///
    /// Copy-on-write when the world description is shared: other
    /// simulations holding the same [`WorldConfig`] are unaffected.
    pub fn set_network(&mut self, network: NetworkConfig) {
        Arc::make_mut(&mut self.config).set_network(network);
    }

    /// Enables or disables OS scheduling delays on message endpoints.
    ///
    /// On an idle host a runnable process is dispatched immediately; the
    /// Loki harness disables scheduling delays during the synchronization
    /// mini-phases (which run before/after the experiment, when nothing
    /// else is runnable) and enables them during the busy runtime phase.
    pub fn set_sched_enabled(&mut self, enabled: bool) {
        self.sched_enabled = enabled;
    }

    /// Disables trace collection (for long benchmark runs).
    pub fn disable_trace(&mut self) {
        self.trace_enabled = false;
        self.trace.clear();
    }

    /// Caps the number of processed events (a runaway guard).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Arms per-experiment containment budgets: a virtual-time ceiling
    /// (events scheduled after `max_virtual_ns` never run) and an
    /// event-count ceiling. `None` leaves a ceiling unbounded; both
    /// `None` disarms the check entirely, restoring the zero-cost hot
    /// path (unlike the [`Simulation::set_max_events`] runaway guard,
    /// which always applies and panics).
    ///
    /// Armed, [`Simulation::step`] refuses the first event past either
    /// ceiling, [`Simulation::budget_exceeded`] reports which ceiling
    /// tripped, and [`Simulation::next_event_time`] reads `None` so a
    /// [`WorldSet`](crate::batch::WorldSet) treats the world as drained.
    /// The trip point depends only on the world's own event sequence —
    /// never on how the world is driven — so it is identical across
    /// `step`/`run`/`run_ready` bursts and any batch interleaving.
    pub fn set_budget(&mut self, max_virtual_ns: Option<u64>, max_events: Option<u64>) {
        self.budget_virtual_ns = max_virtual_ns.unwrap_or(u64::MAX);
        self.budget_events = max_events.unwrap_or(u64::MAX);
        self.budget_armed = max_virtual_ns.is_some() || max_events.is_some();
        if !self.budget_armed {
            self.budget_tripped = None;
        }
    }

    /// Which containment budget tripped, if any (see
    /// [`Simulation::set_budget`]). Cleared by [`Simulation::reset`].
    pub fn budget_exceeded(&self) -> Option<BudgetExceeded> {
        self.budget_tripped
    }

    /// Armed-path admission check: trips a budget when the next event
    /// would pass a ceiling, and refuses it. Deterministic for any
    /// driver because it reads only `events_processed`, the next event's
    /// scheduled time, and that event's target-liveness — all invariant
    /// under burst shape.
    ///
    /// Garbage head events — a cancelled timer, or any event addressed
    /// to a dead actor — are discarded rather than tripped on: processing
    /// one is a no-op in every drive pattern, and an experiment that has
    /// in fact finished routinely leaves such events behind (an exited
    /// daemon's far-future watchdog timer, exit-race deliveries). Tripping
    /// on those would fail healthy experiments. The discard happens only
    /// when a ceiling is already passed, so the disarmed and under-budget
    /// hot paths are untouched.
    #[inline]
    fn budget_admit(&mut self) -> bool {
        if self.budget_tripped.is_some() {
            return false;
        }
        loop {
            let Some((time, event)) = self.queue.peek() else {
                // Empty queue: admit; `step` observes the drain itself.
                return true;
            };
            let over_events = self.events_processed >= self.budget_events;
            if !over_events && time <= self.budget_virtual_ns {
                return true;
            }
            let target = match event {
                Event::Start { actor } => *actor,
                Event::Deliver { to, .. } => *to,
                Event::Timer { actor, .. } => *actor,
                Event::PeerDown { observer, .. } => *observer,
            };
            let cancelled = match event {
                Event::Timer { id, .. } => !self.timers.pending(TimerKey::unpack(id.raw())),
                _ => false,
            };
            if self.is_alive(target) && !cancelled {
                self.budget_tripped = Some(if over_events {
                    BudgetExceeded::Events
                } else {
                    BudgetExceeded::VirtualTime
                });
                return false;
            }
            if let Some((_, Event::Timer { id, .. })) = self.queue.pop() {
                // Release the slot of a live timer on a dead actor (a
                // cancelled one was already retired by `cancel`).
                self.timers.fire(TimerKey::unpack(id.raw()));
            }
        }
    }

    /// Adds a host; returns its id.
    ///
    /// # Panics
    ///
    /// Panics when the host's name is already registered — a duplicate
    /// would silently shadow the second host in every name-based lookup.
    /// Use [`Simulation::try_add_host`] to handle the error instead.
    pub fn add_host(&mut self, config: HostConfig) -> HostId {
        match self.try_add_host(config) {
            Ok(id) => id,
            Err(e) => panic!("loki-sim: {e}"),
        }
    }

    /// Adds a host, rejecting a duplicate name with a typed error.
    ///
    /// Copy-on-write when the world description is shared (batch users
    /// should finish building the [`WorldConfig`] before sharing it).
    pub fn try_add_host(&mut self, config: HostConfig) -> Result<HostId, DuplicateHost> {
        Arc::make_mut(&mut self.config).add_host(config)
    }

    /// Host configuration lookup.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not part of this simulation.
    pub fn host(&self, host: HostId) -> &HostConfig {
        self.config.host(host)
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.config.num_hosts()
    }

    /// Spawns an actor on `host`; its `on_start` runs at the current time.
    pub fn spawn(&mut self, host: HostId, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.actor_hosts.push(host);
        self.alive.push(true);
        if let Some(horizons) = self.fifo_out.get_mut(id.0 as usize) {
            // A slot left over from before a reset: reuse its allocation.
            horizons.clear();
        } else {
            self.fifo_out.push(Vec::new());
        }
        if self.watchers.len() < self.actors.len() {
            // May already extend past `id` when a watcher registered
            // interest before this actor was spawned.
            self.watchers.resize_with(self.actors.len(), InlineVec::new);
        }
        if self.trace_enabled {
            self.trace.push(TraceEntry::Spawn {
                time: self.time,
                actor: id,
                host,
            });
        }
        self.push(self.time, Event::Start { actor: id });
        id
    }

    /// Current simulation (physical) time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Reads `host`'s local clock at the current instant.
    pub fn local_clock(&self, host: HostId) -> LocalNanos {
        self.config.clocks[host.0 as usize].read(self.time)
    }

    /// Whether `actor` is still alive.
    pub fn is_alive(&self, actor: ActorId) -> bool {
        self.alive.get(actor.0 as usize).copied().unwrap_or(false)
    }

    /// The host an actor runs on.
    ///
    /// # Panics
    ///
    /// Panics if `actor` was never spawned.
    pub fn host_of(&self, actor: ActorId) -> HostId {
        self.actor_hosts[actor.0 as usize]
    }

    /// The collected trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// High-water mark of concurrently armed timers (a diagnostic: the
    /// timer slab recycles slots, so this stays bounded however much
    /// arm/cancel traffic a workload generates).
    pub fn timer_slots(&self) -> usize {
        self.timers.slots()
    }

    /// High-water mark of concurrently pending events (the event slab's
    /// size; slots are recycled).
    pub fn event_slots(&self) -> usize {
        self.queue.slab_slots()
    }

    /// Number of events currently pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The scheduled time of the earliest pending event, or `None` when
    /// the queue has drained — or when a containment budget has tripped
    /// (a tripped world refuses further events, so for scheduling
    /// purposes it *is* drained). This is the scheduling key
    /// [`crate::batch::WorldSet`] interleaves worlds by.
    pub fn next_event_time(&self) -> Option<u64> {
        if self.budget_tripped.is_some() {
            return None;
        }
        self.queue.peek_time()
    }

    /// Number of events processed since construction or the last
    /// [`Simulation::reset`].
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Kills an actor from outside the simulation (test harness use).
    pub fn kill(&mut self, actor: ActorId, reason: DownReason) {
        self.kill_internal(actor, reason);
    }

    /// The network fault plane (read-only; inactive in a healthy world).
    pub fn net_faults(&self) -> &NetFaultPlane {
        &self.net_faults
    }

    /// Applies a network [`FaultAction`] to the fault plane, resolving
    /// host names through the world description. Returns `Ok(false)` when
    /// the action is not a network action (the caller handles it),
    /// `Ok(true)` when the plane was updated.
    ///
    /// # Errors
    ///
    /// [`NetFaultError`] when a host name is unknown or a parameter is
    /// out of range; the plane is left unchanged.
    pub fn apply_net_fault(&mut self, action: &FaultAction) -> Result<bool, NetFaultError> {
        let config = &self.config;
        self.net_faults
            .apply_action(action, config.num_hosts(), |name| config.find_host(name))
    }

    /// Heals the plane: removes every active network fault. The harness
    /// calls this at experiment teardown (the injector's kill path is
    /// out-of-band), so an experiment that never heals still drains.
    pub fn clear_net_faults(&mut self) {
        self.net_faults.heal();
    }

    /// Parks killed actors' boxes in an internal graveyard instead of
    /// dropping them, so a harness can [`drain`](Simulation::drain_dead)
    /// and recycle the allocations. Off by default and switched off again
    /// by [`Simulation::reset`] (which also empties the graveyard), so
    /// plain simulations never accumulate corpses.
    pub fn set_reclaim_dead(&mut self, enabled: bool) {
        self.reclaim_dead = enabled;
        if !enabled {
            self.graveyard.clear();
        }
    }

    /// Drains the corpses parked since the last drain (see
    /// [`Simulation::set_reclaim_dead`]), oldest first.
    pub fn drain_dead(&mut self) -> std::vec::Drain<'_, Box<dyn Actor<M>>> {
        self.graveyard.drain(..)
    }

    /// Runs until the event queue drains.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway protection).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or the simulation clock passes
    /// `deadline_ns`, then advances the clock to `deadline_ns` if it is
    /// still behind (time never moves backwards: a deadline earlier than
    /// the current clock leaves it untouched). Returns `true` if the
    /// deadline was hit with events still pending.
    pub fn run_until(&mut self, deadline_ns: u64) -> bool {
        loop {
            match self.queue.peek_time() {
                None => {
                    self.time = self.time.max(deadline_ns);
                    return false;
                }
                Some(t) if t > deadline_ns => {
                    self.time = self.time.max(deadline_ns);
                    return true;
                }
                Some(_) => {
                    if !self.step() {
                        // A tripped containment budget refuses further
                        // events: stop with events still pending, without
                        // advancing the clock to the deadline.
                        return true;
                    }
                }
            }
        }
    }

    /// Processes every pending event scheduled at or before `horizon_ns`,
    /// in order. Unlike [`Simulation::run_until`] the clock is *not*
    /// advanced to the horizon afterwards — it stays at the last processed
    /// event — so driving a world in bursts is indistinguishable from
    /// driving it with [`Simulation::run`] ([`crate::batch::WorldSet`]
    /// interleaves worlds this way).
    pub fn run_ready(&mut self, horizon_ns: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon_ns || !self.step() {
                return;
            }
        }
    }

    /// Processes one event. Returns `false` when the queue is empty or a
    /// containment budget has tripped (see [`Simulation::set_budget`]).
    pub fn step(&mut self) -> bool {
        if self.budget_armed && !self.budget_admit() {
            return false;
        }
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.max_events,
            "simulation exceeded {} events — runaway?",
            self.max_events
        );
        debug_assert!(time >= self.time, "time went backwards");
        self.time = time;
        match event {
            Event::Start { actor } => {
                self.dispatch(actor, |a, ctx| a.on_start(ctx));
            }
            Event::Deliver { to, from, msg } => {
                if self.trace_enabled && self.is_alive(to) {
                    self.trace.push(TraceEntry::Deliver {
                        time: self.time,
                        from,
                        to,
                    });
                }
                self.dispatch(to, move |a, ctx| a.on_message(ctx, from, msg));
            }
            Event::Timer { actor, id, tag } => {
                if !self.timers.fire(TimerKey::unpack(id.raw())) {
                    return true; // cancelled while queued
                }
                self.dispatch(actor, move |a, ctx| a.on_timer(ctx, tag));
            }
            Event::PeerDown {
                observer,
                dead,
                reason,
            } => {
                self.dispatch(observer, move |a, ctx| a.on_peer_down(ctx, dead, reason));
            }
        }
        true
    }

    fn dispatch(
        &mut self,
        actor: ActorId,
        f: impl FnOnce(&mut Box<dyn Actor<M>>, &mut Ctx<'_, M>),
    ) {
        if !self.is_alive(actor) {
            return;
        }
        let mut a = match self.actors[actor.0 as usize].take() {
            Some(a) => a,
            None => return,
        };
        let mut ctx = Ctx {
            sim: self,
            me: actor,
            self_down: None,
        };
        f(&mut a, &mut ctx);
        let self_down = ctx.self_down;
        match self_down {
            None => {
                // Only restore if the actor wasn't killed by someone else
                // during its own callback (not possible today, but cheap to
                // guard).
                if self.alive[actor.0 as usize] {
                    self.actors[actor.0 as usize] = Some(a);
                }
            }
            Some(reason) => {
                self.actors[actor.0 as usize] = Some(a); // keep the corpse for ownership hygiene
                self.kill_internal(actor, reason);
            }
        }
    }

    fn kill_internal(&mut self, actor: ActorId, reason: DownReason) {
        if !self.is_alive(actor) {
            return;
        }
        self.alive[actor.0 as usize] = false;
        let corpse = self.actors[actor.0 as usize].take();
        if self.reclaim_dead {
            if let Some(corpse) = corpse {
                self.graveyard.push(corpse);
            }
        }
        if self.trace_enabled {
            self.trace.push(TraceEntry::Down {
                time: self.time,
                actor,
                reason,
            });
        }
        let detect =
            self.config.hosts[self.actor_hosts[actor.0 as usize].0 as usize].crash_detect_ns;
        let watchers = std::mem::take(&mut self.watchers[actor.0 as usize]);
        for observer in watchers {
            self.push(
                self.time + detect,
                Event::PeerDown {
                    observer,
                    dead: actor,
                    reason,
                },
            );
        }
    }

    fn push(&mut self, time: u64, event: Event<M>) {
        self.queue.push(time, event);
    }
}

impl<M> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("hosts", &self.config.num_hosts())
            .field("actors", &self.actors.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

/// The context handed to actor callbacks: clock, messaging, timers,
/// spawning, RNG.
pub struct Ctx<'a, M> {
    sim: &'a mut Simulation<M>,
    me: ActorId,
    self_down: Option<DownReason>,
}

impl<'a, M: 'static> Ctx<'a, M> {
    /// The current actor's id.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// The current actor's host.
    pub fn my_host(&self) -> HostId {
        self.sim.host_of(self.me)
    }

    /// The host name of the current actor.
    pub fn my_host_name(&self) -> &str {
        &self.sim.host(self.my_host()).name
    }

    /// Reads the *local clock* of this actor's host — the only notion of
    /// time a Loki runtime component may use.
    pub fn local_clock(&self) -> LocalNanos {
        self.sim.local_clock(self.my_host())
    }

    /// Physical simulation time. Reserved for harness-level ground truth
    /// (e.g. computing a true injection-correctness oracle); runtime
    /// components must not consult it.
    pub fn physical_now(&self) -> u64 {
        self.sim.now()
    }

    /// Sends `msg` to `to` with realistic delay: sender scheduling delay +
    /// link latency (IPC within a host, TCP across hosts) + receiver
    /// scheduling delay. Deliveries between the same `(sender, receiver)`
    /// pair are FIFO, as over a TCP connection or a shared-memory queue.
    /// Messages to dead actors are silently dropped at delivery time.
    ///
    /// When the [`NetFaultPlane`] is armed the message is additionally
    /// subject to partition cuts, link drop/duplicate/corrupt/reorder
    /// faults, and gray-node slowdown; while the plane is inactive this
    /// path is byte-identical (including RNG consumption) to a plane-less
    /// engine. `M: Clone` supports duplicate delivery.
    pub fn send(&mut self, to: ActorId, msg: M)
    where
        M: Clone,
    {
        let from_host = self.sim.host_of(self.me);
        let to_host = self.sim.host_of(to);
        let link = if from_host == to_host {
            self.sim.config.network.ipc
        } else {
            self.sim.config.network.tcp
        };
        let (d_send, d_recv) = if self.sim.sched_enabled {
            // Both endpoint delays from one RNG word (see
            // `config::sched_delay_pair`): send is the per-event hot path.
            crate::config::sched_delay_pair(
                &self.sim.config.hosts[from_host.0 as usize],
                &self.sim.config.hosts[to_host.0 as usize],
                &mut self.sim.rng,
            )
        } else {
            (0, 0)
        };
        let d_link = link.sample(&mut self.sim.rng);
        let delay = d_send + d_link + d_recv;
        if self.sim.net_faults.is_active() {
            self.send_via_plane(to, from_host, to_host, delay, msg);
        } else {
            let at = self.sim.time + delay;
            self.deliver_fifo(to, at, msg);
        }
    }

    /// Sends with an explicit extra delay (e.g. modelling processing time)
    /// plus the link latency; scheduling delays are not added. Subject to
    /// the same [`NetFaultPlane`] faults as [`Ctx::send`].
    pub fn send_after(&mut self, delay_ns: u64, to: ActorId, msg: M)
    where
        M: Clone,
    {
        let from_host = self.sim.host_of(self.me);
        let to_host = self.sim.host_of(to);
        let link = if from_host == to_host {
            self.sim.config.network.ipc
        } else {
            self.sim.config.network.tcp
        };
        let d_link = link.sample(&mut self.sim.rng);
        let delay = delay_ns + d_link;
        if self.sim.net_faults.is_active() {
            self.send_via_plane(to, from_host, to_host, delay, msg);
        } else {
            let at = self.sim.time + delay;
            self.deliver_fifo(to, at, msg);
        }
    }

    /// The armed-plane send path (cold: only reached while a net fault is
    /// active). Decision order is fixed — partition (structural, no
    /// draw), then per-link corrupt / drop / reorder / duplicate draws,
    /// then gray slowdown — so replays stay byte-identical. Kept out of
    /// line so the fault-free `send` hot path stays small.
    #[cold]
    #[inline(never)]
    fn send_via_plane(
        &mut self,
        to: ActorId,
        from_host: HostId,
        to_host: HostId,
        delay: u64,
        msg: M,
    ) where
        M: Clone,
    {
        if self.sim.net_faults.partitioned(from_host, to_host) {
            return;
        }
        // Copy the Copy params out so the RNG draws below don't fight the
        // plane borrow.
        let link = self.sim.net_faults.link(from_host, to_host);
        let slow = self.sim.net_faults.slowdown(from_host, to_host);
        let mut delay = delay;
        let mut reorder = 0u64;
        let mut dup = false;
        if let Some(lf) = link {
            delay += lf.extra_latency_ns;
            // Corrupt before drop: the corrupted frame reaches the
            // receiver and dies at its checksum, but both knobs must stay
            // independently tunable, so each gets its own draw.
            if lf.corrupt_prob > 0.0 && self.sim.rng.gen_bool(lf.corrupt_prob) {
                return;
            }
            if lf.drop_prob > 0.0 && self.sim.rng.gen_bool(lf.drop_prob) {
                return;
            }
            if lf.reorder_ns > 0 {
                reorder = self.sim.rng.gen_range(0..=lf.reorder_ns);
            }
            dup = lf.dup_prob > 0.0 && self.sim.rng.gen_bool(lf.dup_prob);
        }
        if slow > 1.0 {
            delay = (delay as f64 * slow) as u64;
        }
        let at = self.sim.time + delay;
        if dup {
            // The duplicate models a retransmitted frame: it bypasses the
            // FIFO discipline (it can overtake), arriving at the base time.
            self.sim.push(
                at,
                Event::Deliver {
                    to,
                    from: self.me,
                    msg: msg.clone(),
                },
            );
        }
        if reorder > 0 {
            // A reordered delivery skips the FIFO horizon entirely —
            // overtaking is the point of a reorder fault.
            self.sim.push(
                at + reorder,
                Event::Deliver {
                    to,
                    from: self.me,
                    msg,
                },
            );
        } else {
            self.deliver_fifo(to, at, msg);
        }
    }

    /// Applies a network [`FaultAction`] to the world's fault plane (see
    /// [`Simulation::apply_net_fault`]).
    ///
    /// # Errors
    ///
    /// [`NetFaultError`] when a host name is unknown or a parameter is
    /// out of range; the plane is left unchanged.
    pub fn apply_net_fault(&mut self, action: &FaultAction) -> Result<bool, NetFaultError> {
        self.sim.apply_net_fault(action)
    }

    /// Heals the plane: removes every active network fault.
    pub fn clear_net_faults(&mut self) {
        self.sim.clear_net_faults();
    }

    /// Whether any network fault is currently armed.
    pub fn net_fault_active(&self) -> bool {
        self.sim.net_faults.is_active()
    }

    fn deliver_fifo(&mut self, to: ActorId, at: u64, msg: M) {
        // Per-sender horizons, sorted by receiver: the probe is a binary
        // search over this sender's few peers instead of a hash of the
        // `(from, to)` pair.
        let horizons = &mut self.sim.fifo_out[self.me.0 as usize];
        let at = match horizons.binary_search_by_key(&to.0, |&(receiver, _)| receiver) {
            Ok(i) => {
                let last = horizons[i].1;
                let at = if at <= last { last + 1 } else { at };
                horizons[i].1 = at;
                at
            }
            Err(i) => {
                // First message to this receiver (cold path: allocates or
                // shifts only when the peer set grows).
                horizons.insert(i, (to.0, at));
                at
            }
        };
        self.sim.push(
            at,
            Event::Deliver {
                to,
                from: self.me,
                msg,
            },
        );
    }

    /// Sets a timer firing after `delay_ns`; `tag` is returned to
    /// [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay_ns: u64, tag: u64) -> TimerId {
        let id = TimerId(self.sim.timers.alloc().pack());
        let at = self.sim.time + delay_ns;
        self.sim.push(
            at,
            Event::Timer {
                actor: self.me,
                id,
                tag,
            },
        );
        id
    }

    /// Cancels a pending timer (firing already-queued timers is prevented).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.sim.timers.cancel(TimerKey::unpack(id.raw()));
    }

    /// Registers interest in `peer`'s death; [`Actor::on_peer_down`] will be
    /// called (after the host's crash-detection latency). The peer need not
    /// be spawned yet.
    pub fn watch(&mut self, peer: ActorId) {
        let idx = peer.0 as usize;
        if self.sim.watchers.len() <= idx {
            self.sim.watchers.resize_with(idx + 1, InlineVec::new);
        }
        self.sim.watchers[idx].push(self.me);
    }

    /// Spawns a new actor on `host` (it starts at the current instant).
    pub fn spawn(&mut self, host: HostId, actor: Box<dyn Actor<M>>) -> ActorId {
        self.sim.spawn(host, actor)
    }

    /// Kills another actor immediately (e.g. a daemon killing a node).
    pub fn kill(&mut self, actor: ActorId, reason: DownReason) {
        if actor == self.me {
            self.self_down = Some(reason);
        } else {
            self.sim.kill_internal(actor, reason);
        }
    }

    /// Terminates the current actor with a crash.
    pub fn crash_self(&mut self) {
        self.self_down = Some(DownReason::Crash);
    }

    /// Whether the current actor has requested its own termination during
    /// this callback (via [`Ctx::crash_self`] or [`Ctx::exit_self`]).
    pub fn terminating(&self) -> bool {
        self.self_down.is_some()
    }

    /// Terminates the current actor cleanly.
    pub fn exit_self(&mut self) {
        self.self_down = Some(DownReason::Exit);
    }

    /// Whether `actor` is alive.
    pub fn is_alive(&self, actor: ActorId) -> bool {
        self.sim.is_alive(actor)
    }

    /// The host an actor runs on.
    pub fn host_of(&self, actor: ActorId) -> HostId {
        self.sim.host_of(actor)
    }

    /// Name of a host.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.sim.host(host).name
    }

    /// Looks up a host id by name (O(1); names are unique — duplicates
    /// are rejected at registration).
    pub fn find_host(&self, name: &str) -> Option<HostId> {
        self.sim.config.find_host(name)
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.sim.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyModel;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, PartialEq, Clone)]
    enum Msg {
        Ping,
        Pong,
    }

    struct Ponger;
    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
            if msg == Msg::Ping {
                ctx.send(from, Msg::Pong);
            }
        }
    }

    struct Pinger {
        target: ActorId,
        log: Rc<RefCell<Vec<(u64, Msg)>>>,
    }
    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.target, Msg::Ping);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            self.log.borrow_mut().push((ctx.physical_now(), msg));
        }
    }

    fn two_host_sim(seed: u64) -> (Simulation<Msg>, HostId, HostId) {
        let mut sim = Simulation::new(seed);
        let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(0));
        let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(0));
        sim.set_network(NetworkConfig {
            ipc: LatencyModel::constant(20_000),
            tcp: LatencyModel::constant(150_000),
        });
        (sim, h1, h2)
    }

    #[test]
    fn ping_pong_across_hosts_takes_two_tcp_hops() {
        let (mut sim, h1, h2) = two_host_sim(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h2, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0], (300_000, Msg::Pong)); // 2 × 150 µs
    }

    #[test]
    fn same_host_uses_ipc_latency() {
        let (mut sim, h1, _) = two_host_sim(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h1, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        assert_eq!(log.borrow()[0].0, 40_000); // 2 × 20 µs
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(1_000_000));
            let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(1_000_000));
            let log = Rc::new(RefCell::new(Vec::new()));
            let ponger = sim.spawn(h2, Box::new(Ponger));
            sim.spawn(
                h1,
                Box::new(Pinger {
                    target: ponger,
                    log: log.clone(),
                }),
            );
            sim.run();
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(7), run(7));
        // Different seeds give different scheduling delays (almost surely).
        assert_ne!(run(7), run(8));
    }

    struct CrashOnStart;
    impl Actor<Msg> for CrashOnStart {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.crash_self();
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
    }

    struct Watcher {
        target: ActorId,
        seen: Rc<RefCell<Option<(ActorId, DownReason)>>>,
    }
    impl Actor<Msg> for Watcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.watch(self.target);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
        fn on_peer_down(&mut self, _ctx: &mut Ctx<'_, Msg>, peer: ActorId, reason: DownReason) {
            *self.seen.borrow_mut() = Some((peer, reason));
        }
    }

    #[test]
    fn watcher_notified_of_crash_after_detect_delay() {
        let (mut sim, h1, _) = two_host_sim(3);
        let seen = Rc::new(RefCell::new(None));
        // Spawn watcher first so it registers before the crash. The watch
        // targets an actor id that does not exist yet.
        let crasher_id = ActorId(1);
        sim.spawn(
            h1,
            Box::new(Watcher {
                target: crasher_id,
                seen: seen.clone(),
            }),
        );
        let spawned = sim.spawn(h1, Box::new(CrashOnStart));
        assert_eq!(spawned, crasher_id);
        sim.run();
        assert_eq!(*seen.borrow(), Some((crasher_id, DownReason::Crash)));
        assert!(!sim.is_alive(crasher_id));
        // Crash detection took the configured latency.
        assert_eq!(sim.now(), 50_000);
    }

    #[test]
    fn reclaim_dead_parks_corpses_for_draining() {
        let (mut sim, h1, _) = two_host_sim(11);
        sim.set_reclaim_dead(true);
        sim.spawn(h1, Box::new(CrashOnStart));
        sim.spawn(h1, Box::new(CrashOnStart));
        sim.run();
        assert_eq!(sim.drain_dead().count(), 2);
        // Drained once, the graveyard is empty until the next kill.
        assert_eq!(sim.drain_dead().count(), 0);
        // Reset empties the graveyard and switches reclaim back off.
        sim.spawn(h1, Box::new(CrashOnStart));
        sim.run();
        sim.reset(11);
        assert_eq!(sim.drain_dead().count(), 0);
        sim.spawn(h1, Box::new(CrashOnStart));
        sim.run();
        assert_eq!(sim.drain_dead().count(), 0, "reclaim off after reset");
    }

    #[test]
    fn messages_to_dead_actors_are_dropped() {
        let (mut sim, h1, _) = two_host_sim(4);
        let log = Rc::new(RefCell::new(Vec::new()));
        let dead = sim.spawn(h1, Box::new(CrashOnStart));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: dead,
                log: log.clone(),
            }),
        );
        sim.run();
        assert!(log.borrow().is_empty());
    }

    struct TimerActor {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }
    impl Actor<Msg> for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(1_000, 1);
            let second = ctx.set_timer(2_000, 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, tag: u64) {
            self.fired.borrow_mut().push(tag);
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let (mut sim, h1, _) = two_host_sim(5);
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            h1,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: true,
            }),
        );
        sim.run();
        assert_eq!(*fired.borrow(), vec![1]);

        let fired2 = Rc::new(RefCell::new(Vec::new()));
        let (mut sim, h1, _) = two_host_sim(5);
        sim.spawn(
            h1,
            Box::new(TimerActor {
                fired: fired2.clone(),
                cancel_second: false,
            }),
        );
        sim.run();
        assert_eq!(*fired2.borrow(), vec![1, 2]);
    }

    /// A watchdog that re-arms (set + cancel) a timer on every round: the
    /// cancel-heavy pattern that grew the old tombstone set without bound.
    struct Watchdog {
        rounds: u32,
        pending: Option<TimerId>,
    }
    impl Actor<Msg> for Watchdog {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(1_000, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
            if let Some(old) = self.pending.take() {
                ctx.cancel_timer(old);
            }
            if self.rounds == 0 {
                return;
            }
            self.rounds -= 1;
            // The watchdog: armed, then cancelled on the next round before
            // it can fire.
            self.pending = Some(ctx.set_timer(1_000_000, 99));
            // The heartbeat driving the loop.
            ctx.set_timer(1_000, 0);
        }
    }

    #[test]
    fn cancel_heavy_watchdog_reuses_timer_slots() {
        let (mut sim, h1, _) = two_host_sim(6);
        sim.spawn(
            h1,
            Box::new(Watchdog {
                rounds: 1_000,
                pending: None,
            }),
        );
        sim.run();
        // 1000 set+cancel rounds with at most 2 timers armed at once (the
        // heartbeat and one watchdog): the slab must stay at the high-water
        // mark instead of accumulating a tombstone per cancel.
        assert!(
            sim.timer_slots() <= 3,
            "timer slab grew to {} slots under cancel churn",
            sim.timer_slots()
        );
    }

    #[test]
    fn local_clocks_drift_apart() {
        use loki_clock::params::ClockParams;
        let mut sim: Simulation<Msg> = Simulation::new(6);
        let h1 = sim.add_host(HostConfig::new("h1").clock(ClockParams::with_drift_ppm(0.0, 0.0)));
        let h2 =
            sim.add_host(HostConfig::new("h2").clock(ClockParams::with_drift_ppm(5000.0, 100.0)));
        // No events: drive time forward with run_until.
        sim.run_until(1_000_000_000);
        let c1 = sim.local_clock(h1).as_nanos();
        let c2 = sim.local_clock(h2).as_nanos();
        assert_eq!(c1, 1_000_000_000);
        assert_eq!(c2, 1_000_105_000); // 5 µs offset + 100 ppm drift
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, h1, _) = two_host_sim(7);
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            h1,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: false,
            }),
        );
        let pending = sim.run_until(1_500);
        assert!(pending);
        assert_eq!(*fired.borrow(), vec![1]);
        assert_eq!(sim.now(), 1_500);
    }

    #[test]
    fn run_until_never_moves_time_backwards() {
        // Regression: with events pending beyond the deadline, a second
        // call with an *earlier* deadline used to rewind the clock.
        let (mut sim, h1, _) = two_host_sim(9);
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            h1,
            Box::new(TimerActor {
                fired,
                cancel_second: false,
            }),
        );
        assert!(sim.run_until(1_500)); // timer 2 still pending at 2_000
        assert_eq!(sim.now(), 1_500);
        assert!(sim.run_until(500)); // earlier deadline: time must not rewind
        assert_eq!(sim.now(), 1_500);

        // Same property once the queue has drained.
        sim.run_until(10_000);
        assert_eq!(sim.now(), 10_000);
        assert!(!sim.run_until(3_000));
        assert_eq!(sim.now(), 10_000);
    }

    #[test]
    fn find_host_resolves_names_in_constant_time_path() {
        let (mut sim, h1, h2) = two_host_sim(1);
        // find_host/my_host_name are Ctx methods; probe through an actor.
        struct Probe {
            h1: HostId,
            h2: HostId,
            ran: Rc<RefCell<bool>>,
        }
        impl Actor<Msg> for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                assert_eq!(ctx.find_host("h1"), Some(self.h1));
                assert_eq!(ctx.find_host("h2"), Some(self.h2));
                assert_eq!(ctx.find_host("nope"), None);
                assert_eq!(ctx.my_host_name(), "h1");
                *self.ran.borrow_mut() = true;
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
        }
        let ran = Rc::new(RefCell::new(false));
        sim.spawn(
            h1,
            Box::new(Probe {
                h1,
                h2,
                ran: ran.clone(),
            }),
        );
        sim.run();
        assert!(*ran.borrow());
    }

    #[test]
    fn duplicate_host_names_are_a_hard_error() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let first = sim.add_host(HostConfig::new("dup"));
        let err = sim.try_add_host(HostConfig::new("dup")).unwrap_err();
        assert_eq!(err.name, "dup");
        assert!(err.to_string().contains("dup"), "{err}");

        // The panicking entry point rejects it too, and the rejected host
        // leaves no trace in the world.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_host(HostConfig::new("dup"));
        }));
        assert!(panicked.is_err(), "add_host must panic on a duplicate");
        assert_eq!(sim.num_hosts(), 1);
        assert_eq!(first, HostId(0));

        // WorldConfig rejects duplicates the same way.
        let mut config = WorldConfig::new();
        config.add_host(HostConfig::new("dup")).unwrap();
        assert!(config.add_host(HostConfig::new("dup")).is_err());
        assert_eq!(config.num_hosts(), 1);
    }

    #[test]
    fn worlds_share_one_config_and_copy_on_write() {
        let mut config = WorldConfig::new();
        let h1 = config.add_host(HostConfig::new("h1")).unwrap();
        let config = Arc::new(config);
        let mut a: Simulation<Msg> = Simulation::with_config(config.clone(), 1);
        let b: Simulation<Msg> = Simulation::with_config(config.clone(), 2);
        assert!(Arc::ptr_eq(a.world_config(), b.world_config()));
        assert_eq!(a.host(h1).name, "h1");

        // Mutating one world's description copies on write instead of
        // changing it under the other worlds of the batch.
        a.add_host(HostConfig::new("h2"));
        assert_eq!(a.num_hosts(), 2);
        assert_eq!(b.num_hosts(), 1);
        assert!(!Arc::ptr_eq(a.world_config(), b.world_config()));
    }

    #[test]
    fn reset_replays_identically_and_reuses_slabs() {
        let (mut sim, h1, h2) = two_host_sim(6);
        let drive = |sim: &mut Simulation<Msg>| {
            let fired = Rc::new(RefCell::new(Vec::new()));
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.spawn(
                h1,
                Box::new(Watchdog {
                    rounds: 200,
                    pending: None,
                }),
            );
            sim.spawn(
                h1,
                Box::new(TimerActor {
                    fired: fired.clone(),
                    cancel_second: false,
                }),
            );
            let ponger = sim.spawn(h2, Box::new(Ponger));
            sim.spawn(
                h1,
                Box::new(Pinger {
                    target: ponger,
                    log: log.clone(),
                }),
            );
            sim.run();
            let fired = fired.borrow().clone();
            let log = log.borrow().clone();
            (sim.now(), fired, log, sim.trace().len())
        };

        let first = drive(&mut sim);
        let marks = (sim.event_slots(), sim.timer_slots());

        sim.reset(6);
        assert_eq!(sim.now(), 0);
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.next_event_time(), None);
        assert!(!sim.is_alive(ActorId(0)));

        let second = drive(&mut sim);
        assert_eq!(first, second, "a reset world must replay byte-identically");
        assert_eq!(
            (sim.event_slots(), sim.timer_slots()),
            marks,
            "replaying after reset must reuse the slabs, not regrow them"
        );
    }

    /// Applies a partition at start, sends through it, heals on a timer
    /// and resends.
    struct NetFaulter {
        target: ActorId,
        log: Rc<RefCell<Vec<(u64, Msg)>>>,
    }
    impl Actor<Msg> for NetFaulter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            let part = FaultAction::Partition {
                groups: vec![vec!["h1".into()], vec!["h2".into()]],
            };
            assert_eq!(ctx.apply_net_fault(&part), Ok(true));
            assert!(ctx.net_fault_active());
            ctx.send(self.target, Msg::Ping); // cut by the partition
            ctx.set_timer(1_000_000, 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            self.log.borrow_mut().push((ctx.physical_now(), msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
            ctx.clear_net_faults();
            ctx.send(self.target, Msg::Ping); // flows after the heal
        }
    }

    #[test]
    fn partition_cuts_cross_host_traffic_until_healed() {
        let (mut sim, h1, h2) = two_host_sim(12);
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h2, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(NetFaulter {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        let log = log.borrow();
        // Only the post-heal ping round-trips: heal at 1 ms + 2 × 150 µs.
        assert_eq!(*log, vec![(1_300_000, Msg::Pong)]);
        assert!(!sim.net_faults().is_active(), "heal cleared the plane");
    }

    #[test]
    fn link_fault_is_directed() {
        let (mut sim, h1, h2) = two_host_sim(13);
        // Total loss h2 → h1 only: pings arrive, pongs die.
        assert_eq!(
            sim.apply_net_fault(&FaultAction::LinkFault {
                from: "h2".into(),
                to: "h1".into(),
                drop_prob: 1.0,
                dup_prob: 0.0,
                reorder_ns: 0,
                corrupt_prob: 0.0,
                extra_latency_ns: 0,
            }),
            Ok(true)
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h2, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        assert!(log.borrow().is_empty(), "the pong was dropped");
        // The ping itself arrived: the last event is its delivery.
        assert_eq!(sim.now(), 150_000);
    }

    #[test]
    fn dup_link_delivers_twice() {
        let (mut sim, h1, h2) = two_host_sim(14);
        assert_eq!(
            sim.apply_net_fault(&FaultAction::LinkFault {
                from: "h1".into(),
                to: "h2".into(),
                drop_prob: 0.0,
                dup_prob: 1.0,
                reorder_ns: 0,
                corrupt_prob: 0.0,
                extra_latency_ns: 0,
            }),
            Ok(true)
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h2, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        // The duplicated ping produced two pongs.
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn gray_node_slows_both_directions() {
        let (mut sim, h1, h2) = two_host_sim(15);
        assert_eq!(
            sim.apply_net_fault(&FaultAction::GrayNode {
                host: "h2".into(),
                slowdown: 2.0,
            }),
            Ok(true)
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        let ponger = sim.spawn(h2, Box::new(Ponger));
        sim.spawn(
            h1,
            Box::new(Pinger {
                target: ponger,
                log: log.clone(),
            }),
        );
        sim.run();
        // Both legs touch the gray host: 2 × (150 µs × 2).
        assert_eq!(*log.borrow(), vec![(600_000, Msg::Pong)]);
    }

    #[test]
    fn reset_heals_the_plane() {
        let (mut sim, _h1, _h2) = two_host_sim(16);
        sim.apply_net_fault(&FaultAction::Partition {
            groups: vec![vec!["h1".into()], vec!["h2".into()]],
        })
        .unwrap();
        assert!(sim.net_faults().is_active());
        sim.reset(16);
        assert!(
            !sim.net_faults().is_active(),
            "a recycled world must start healthy"
        );
    }

    #[test]
    fn trace_records_lifecycle() {
        let (mut sim, h1, _) = two_host_sim(8);
        sim.spawn(h1, Box::new(CrashOnStart));
        sim.run();
        let kinds: Vec<&'static str> = sim
            .trace()
            .iter()
            .map(|t| match t {
                TraceEntry::Spawn { .. } => "spawn",
                TraceEntry::Down { .. } => "down",
                TraceEntry::Deliver { .. } => "deliver",
            })
            .collect();
        assert_eq!(kinds, vec!["spawn", "down"]);
    }
}
