//! # loki-sim
//!
//! Deterministic discrete-event simulation substrate for the Loki fault
//! injector. The thesis evaluated Loki on a cluster of Linux hosts; this
//! crate models exactly the aspects of that environment the evaluation
//! depends on:
//!
//! * **hosts** with independent, drifting virtual clocks
//!   ([`loki_clock::VirtualClock`]) read at a configurable granularity;
//! * an **OS scheduler** per host whose timeslice adds a dispatch delay to
//!   every message endpoint — the dominant cause of missed state-targeted
//!   injections (thesis §3.2.2, Figures 3.2/3.3);
//! * a **network** with IPC-like (~20 µs) same-host and TCP-like (~150 µs)
//!   cross-host latency (the figures of the §3.4.2 design comparison);
//! * **processes** (actors) that can crash, exit, watch one another, set
//!   timers, and spawn new processes — everything the Loki daemons and
//!   nodes need.
//!
//! Runs are exactly reproducible for a given seed.
//!
//! The event core underneath is hash-free and allocation-lean: see
//! [`queue`] for the index heap and the generation-stamped timer slab, and
//! the [`engine`] module docs for how the engine uses them.
//!
//! Campaigns that run many independent experiments share one immutable
//! [`engine::WorldConfig`] across all their simulations and interleave
//! batches of them on one thread with a [`batch::WorldSet`]
//! (FoundationDB-style "many worlds, one process"); see the [`batch`]
//! module docs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod engine;
pub mod netfault;
pub mod queue;

pub use batch::WorldSet;
pub use config::{HostConfig, LatencyModel, NetworkConfig};
pub use engine::{
    Actor, ActorId, BudgetExceeded, Ctx, DownReason, DuplicateHost, HostId, Simulation, TimerId,
    TraceEntry, WorldConfig,
};
pub use netfault::{LinkFaultParams, NetFaultError, NetFaultPlane};
