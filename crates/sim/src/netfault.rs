//! The dynamic network fault plane: partitions, lossy/gray links, message
//! mutation — layered *over* the immutable [`WorldConfig`](crate::engine::WorldConfig) network.
//!
//! [`WorldConfig`](crate::engine::WorldConfig) describes the healthy
//! network and is `Arc`-shared, immutable, across every world of a study.
//! Mid-experiment network faults therefore live here, in a small mutable
//! [`NetFaultPlane`] owned by each [`Simulation`](crate::engine::Simulation):
//!
//! * a **partition** assigns every host to a group; cross-group messages
//!   are dropped (no RNG draw — the decision is structural);
//! * **directed link faults** degrade one `from → to` direction with
//!   per-message drop/duplicate/corrupt probabilities, a uniform reorder
//!   delay, and a fixed extra latency (asymmetric faults are two entries);
//! * a **gray node** multiplies the delay of every message into or out of
//!   one host.
//!
//! Determinism contract (the invariant everything else in this workspace
//! leans on):
//!
//! * While the plane is **inactive** — the steady state of every fault-free
//!   experiment — the send path consumes *zero* additional RNG draws and
//!   costs one boolean branch, so results and the `event_overhead` bench
//!   stay aligned with the pre-plane engine.
//! * While **active**, every probabilistic decision draws from the
//!   simulation's own seeded RNG in a fixed order (corrupt, drop, reorder,
//!   duplicate), so a given `(seed, experiment)` replays byte-identically
//!   regardless of worker count or batch width.
//! * [`Simulation::reset`](crate::engine::Simulation::reset) calls
//!   [`NetFaultPlane::reset`], so a recycled world in a
//!   [`WorldSet`](crate::batch::WorldSet) never leaks one experiment's
//!   partition into the next.
//!
//! Semantics worth spelling out:
//!
//! * **Corrupted** messages model the receiver's checksum discarding the
//!   frame: they are dropped (the engine cannot mutate an opaque payload),
//!   but the corrupt decision draws before the drop decision so the two
//!   knobs stay independently tunable.
//! * **Reordered and duplicated** deliveries bypass the per-`(sender,
//!   receiver)` FIFO discipline — overtaking is the entire point of a
//!   reorder fault.
//! * Partitions apply to *every* message, including Loki's own daemon
//!   traffic (the daemons share the system's network, §3.5.2). The central
//!   daemon heals the plane when it begins experiment teardown — the
//!   injector's kill path is out-of-band — so a never-healed partition
//!   still terminates as a typed timeout, never a stall.

use crate::engine::HostId;
use loki_core::probe::FaultAction;
use std::fmt;

/// Parameters of one directed link fault (see
/// [`FaultAction::LinkFault`] for field semantics).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct LinkFaultParams {
    /// Per-message drop probability in `[0,1]`.
    pub drop_prob: f64,
    /// Per-message duplication probability in `[0,1]`.
    pub dup_prob: f64,
    /// Uniform extra-delay bound (ns) applied outside the FIFO discipline.
    pub reorder_ns: u64,
    /// Per-message corruption probability in `[0,1]` (corrupted frames are
    /// discarded by the receiver's checksum).
    pub corrupt_prob: f64,
    /// Fixed extra latency (ns) on every message.
    pub extra_latency_ns: u64,
}

/// Why a [`FaultAction`] could not be applied to the plane.
#[derive(Clone, Debug, PartialEq)]
pub enum NetFaultError {
    /// The action names a host absent from the world.
    UnknownHost(String),
    /// A probability field is outside `[0,1]` (or not finite).
    BadProbability {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A gray-node slowdown below 1.0 (or not finite) — gray nodes are
    /// slow, never fast.
    BadSlowdown(f64),
}

impl fmt::Display for NetFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFaultError::UnknownHost(host) => write!(f, "unknown host `{host}`"),
            NetFaultError::BadProbability { field, value } => {
                write!(f, "{field} = {value} is not a probability in [0,1]")
            }
            NetFaultError::BadSlowdown(v) => {
                write!(f, "gray-node slowdown {v} must be finite and >= 1.0")
            }
        }
    }
}

impl std::error::Error for NetFaultError {}

fn check_prob(field: &'static str, value: f64) -> Result<(), NetFaultError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(NetFaultError::BadProbability { field, value })
    }
}

/// The mutable per-world network fault state (see the module docs for the
/// layering and determinism contract).
///
/// All mutators keep the internal `active` flag exact, so the engine's
/// send path pays a single predictable branch while no fault is armed.
/// Buffers retain capacity across [`reset`](Self::reset), matching the
/// allocation discipline of the rest of the per-world state.
#[derive(Debug, Default)]
pub struct NetFaultPlane {
    /// Partition group per host index; empty when no partition is armed.
    group_of: Vec<u32>,
    /// Directed link faults, sorted by `(from, to)` for binary search.
    links: Vec<(u32, u32, LinkFaultParams)>,
    /// Per-host delay multiplier; empty when no gray node is armed.
    gray: Vec<f64>,
    /// Exact summary of the three stores: false ⇔ all empty/identity.
    active: bool,
}

impl NetFaultPlane {
    /// Creates a healthy (inactive) plane.
    pub fn new() -> Self {
        NetFaultPlane::default()
    }

    /// Whether any fault is armed. While false, the engine's send path is
    /// byte-identical (including RNG consumption) to a plane-less engine.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Removes every fault, keeping buffer capacity (called by
    /// `Simulation::reset` so recycled worlds start healthy).
    pub fn reset(&mut self) {
        self.group_of.clear();
        self.links.clear();
        self.gray.clear();
        self.active = false;
    }

    /// [`reset`](Self::reset) under its fault-vocabulary name: the effect
    /// of [`FaultAction::Heal`].
    pub fn heal(&mut self) {
        self.reset();
    }

    /// Arms a partition: host `h` joins group `assignment[h]`. Hosts not
    /// covered by `assignment` (it may be shorter than the host count)
    /// join the implicit group `u32::MAX`.
    pub fn set_partition(&mut self, assignment: &[u32]) {
        self.group_of.clear();
        self.group_of.extend_from_slice(assignment);
        self.active = true;
    }

    /// Arms (or replaces) the directed link fault `from → to`.
    pub fn set_link_fault(&mut self, from: HostId, to: HostId, params: LinkFaultParams) {
        let key = (from.0, to.0);
        match self.links.binary_search_by_key(&key, |&(f, t, _)| (f, t)) {
            Ok(i) => self.links[i].2 = params,
            Err(i) => self.links.insert(i, (key.0, key.1, params)),
        }
        self.active = true;
    }

    /// Marks `host` gray with the given delay multiplier (≥ 1.0).
    pub fn set_gray(&mut self, host: HostId, slowdown: f64) {
        let idx = host.0 as usize;
        if self.gray.len() <= idx {
            self.gray.resize(idx + 1, 1.0);
        }
        self.gray[idx] = slowdown;
        self.active = true;
    }

    /// Whether a message `from → to` is cut by the armed partition.
    #[inline]
    pub fn partitioned(&self, from: HostId, to: HostId) -> bool {
        if self.group_of.is_empty() || from == to {
            return false;
        }
        let group = |h: HostId| self.group_of.get(h.0 as usize).copied().unwrap_or(u32::MAX);
        group(from) != group(to)
    }

    /// The armed link fault on `from → to`, if any.
    #[inline]
    pub fn link(&self, from: HostId, to: HostId) -> Option<LinkFaultParams> {
        let key = (from.0, to.0);
        self.links
            .binary_search_by_key(&key, |&(f, t, _)| (f, t))
            .ok()
            .map(|i| self.links[i].2)
    }

    /// The gray-node delay multiplier for a message `from → to`: the worst
    /// (largest) multiplier of the two endpoints, `1.0` when neither is
    /// gray.
    #[inline]
    pub fn slowdown(&self, from: HostId, to: HostId) -> f64 {
        let of = |h: HostId| self.gray.get(h.0 as usize).copied().unwrap_or(1.0);
        of(from).max(of(to))
    }

    /// Applies a network [`FaultAction`], resolving host names through
    /// `find_host` (the world's name → [`HostId`] map).
    ///
    /// Returns `Ok(false)` when the action is not a network action (the
    /// caller handles crash/hang/custom effects itself), `Ok(true)` when
    /// it was applied.
    ///
    /// # Errors
    ///
    /// [`NetFaultError`] when a host name is unknown or a parameter is out
    /// of range; the plane is left unchanged.
    pub fn apply_action(
        &mut self,
        action: &FaultAction,
        num_hosts: usize,
        mut find_host: impl FnMut(&str) -> Option<HostId>,
    ) -> Result<bool, NetFaultError> {
        let mut resolve = |name: &str| -> Result<HostId, NetFaultError> {
            find_host(name).ok_or_else(|| NetFaultError::UnknownHost(name.to_owned()))
        };
        match action {
            FaultAction::Partition { groups } => {
                // Validate every name before touching the plane.
                let mut assignment = vec![u32::MAX; num_hosts];
                for (g, members) in groups.iter().enumerate() {
                    for name in members {
                        let host = resolve(name)?;
                        if let Some(slot) = assignment.get_mut(host.0 as usize) {
                            *slot = g as u32;
                        }
                    }
                }
                self.set_partition(&assignment);
                Ok(true)
            }
            FaultAction::Heal => {
                self.heal();
                Ok(true)
            }
            FaultAction::LinkFault {
                from,
                to,
                drop_prob,
                dup_prob,
                reorder_ns,
                corrupt_prob,
                extra_latency_ns,
            } => {
                check_prob("drop_prob", *drop_prob)?;
                check_prob("dup_prob", *dup_prob)?;
                check_prob("corrupt_prob", *corrupt_prob)?;
                let from = resolve(from)?;
                let to = resolve(to)?;
                self.set_link_fault(
                    from,
                    to,
                    LinkFaultParams {
                        drop_prob: *drop_prob,
                        dup_prob: *dup_prob,
                        reorder_ns: *reorder_ns,
                        corrupt_prob: *corrupt_prob,
                        extra_latency_ns: *extra_latency_ns,
                    },
                );
                Ok(true)
            }
            FaultAction::GrayNode { host, slowdown } => {
                if !slowdown.is_finite() || *slowdown < 1.0 {
                    return Err(NetFaultError::BadSlowdown(*slowdown));
                }
                let host = resolve(host)?;
                self.set_gray(host, *slowdown);
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId(i)
    }

    #[test]
    fn fresh_plane_is_inactive_and_transparent() {
        let p = NetFaultPlane::new();
        assert!(!p.is_active());
        assert!(!p.partitioned(h(0), h(1)));
        assert_eq!(p.link(h(0), h(1)), None);
        assert_eq!(p.slowdown(h(0), h(1)), 1.0);
    }

    #[test]
    fn partition_cuts_cross_group_only() {
        let mut p = NetFaultPlane::new();
        p.set_partition(&[0, 1, 1]);
        assert!(p.is_active());
        assert!(p.partitioned(h(0), h(1)));
        assert!(p.partitioned(h(2), h(0)));
        assert!(!p.partitioned(h(1), h(2)));
        assert!(!p.partitioned(h(0), h(0)), "same host is never partitioned");
        // Hosts beyond the assignment share the implicit group.
        assert!(!p.partitioned(h(5), h(9)));
        assert!(p.partitioned(h(0), h(5)));
        p.heal();
        assert!(!p.is_active());
        assert!(!p.partitioned(h(0), h(1)));
    }

    #[test]
    fn link_faults_are_directed_and_replaceable() {
        let mut p = NetFaultPlane::new();
        let params = LinkFaultParams {
            drop_prob: 0.5,
            ..Default::default()
        };
        p.set_link_fault(h(0), h(1), params);
        assert_eq!(p.link(h(0), h(1)), Some(params));
        assert_eq!(p.link(h(1), h(0)), None, "faults are one direction only");
        let harsher = LinkFaultParams {
            drop_prob: 1.0,
            ..Default::default()
        };
        p.set_link_fault(h(0), h(1), harsher);
        assert_eq!(p.link(h(0), h(1)), Some(harsher));
    }

    #[test]
    fn gray_slowdown_takes_the_worst_endpoint() {
        let mut p = NetFaultPlane::new();
        p.set_gray(h(2), 4.0);
        assert_eq!(p.slowdown(h(0), h(2)), 4.0);
        assert_eq!(p.slowdown(h(2), h(0)), 4.0);
        assert_eq!(p.slowdown(h(0), h(1)), 1.0);
        p.set_gray(h(0), 8.0);
        assert_eq!(p.slowdown(h(0), h(2)), 8.0);
    }

    #[test]
    fn apply_action_validates_before_mutating() {
        let hosts = ["host1", "host2"];
        let find = |name: &str| {
            hosts
                .iter()
                .position(|&n| n == name)
                .map(|i| HostId(i as u32))
        };
        let mut p = NetFaultPlane::new();
        let bad = FaultAction::LinkFault {
            from: "host1".into(),
            to: "host2".into(),
            drop_prob: 1.5,
            dup_prob: 0.0,
            reorder_ns: 0,
            corrupt_prob: 0.0,
            extra_latency_ns: 0,
        };
        assert!(matches!(
            p.apply_action(&bad, hosts.len(), find),
            Err(NetFaultError::BadProbability {
                field: "drop_prob",
                ..
            })
        ));
        assert!(!p.is_active(), "rejected action must not arm the plane");
        let unknown = FaultAction::GrayNode {
            host: "nope".into(),
            slowdown: 2.0,
        };
        assert!(matches!(
            p.apply_action(&unknown, hosts.len(), find),
            Err(NetFaultError::UnknownHost(_))
        ));
        let slow = FaultAction::GrayNode {
            host: "host2".into(),
            slowdown: 0.5,
        };
        assert!(matches!(
            p.apply_action(&slow, hosts.len(), find),
            Err(NetFaultError::BadSlowdown(_))
        ));
        // Non-net actions pass through untouched.
        assert_eq!(
            p.apply_action(&FaultAction::CrashNode, hosts.len(), find),
            Ok(false)
        );
        // A valid partition applies.
        let part = FaultAction::Partition {
            groups: vec![vec!["host1".into()], vec!["host2".into()]],
        };
        assert_eq!(p.apply_action(&part, hosts.len(), find), Ok(true));
        assert!(p.partitioned(h(0), h(1)));
    }
}
