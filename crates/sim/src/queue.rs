//! The hash-free, allocation-lean event core: an index heap over a
//! free-list slab, and a generation-stamped timer slab.
//!
//! Both structures exist to keep [`Simulation::step`](crate::engine::Simulation::step)
//! free of hashing and per-event allocation in the steady state:
//!
//! * [`EventQueue`] — the priority queue keeps only packed
//!   `(time, seq·slot)` keys (16 bytes) in a flat 4-ary min-heap while the
//!   event bodies park in a slab recycled through an intrusive free list.
//!   Heap sifts therefore move small fixed-size keys instead of full
//!   message payloads — and since all four sibling keys share one cache
//!   line, the 4-ary sift-down touches about half the lines a binary heap
//!   of the same size does. Once the slab has grown to the simulation's
//!   high-water mark of in-flight events, pushing an event allocates
//!   nothing.
//! * [`TimerSlab`] — live timers occupy generation-stamped slots.
//!   Cancelling is one array write (bump the generation); the pop-side
//!   liveness check is one generation compare. Unlike a tombstone set,
//!   cancel-heavy workloads (watchdogs that re-arm on every message) reuse
//!   a bounded set of slots instead of growing without bound.
//!
//! Pop order is total on `(time, seq)` with `seq` assigned in push order,
//! which is exactly the ordering contract of the previous
//! full-payload heap — the engine's determinism guarantee is preserved by
//! construction and pinned by the equivalence proptest in
//! `tests/prop_sim.rs`.

/// Sentinel for "no next free slot" in the intrusive free lists.
const NIL: u32 = u32::MAX;

/// The packed heap key: event bodies stay in the slab, the heap orders
/// only these. One `u128` laid out as `time (high 64) | seq (next 32) |
/// slot (low 32)`, so a key is 16 bytes, exactly four keys share a cache
/// line, and the heap's ordering identity — `(time, seq)` ascending, total
/// because `seq` is unique — is a single integer comparison (the slot bits
/// sit below `seq` and can never decide it).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey(u128);

impl HeapKey {
    fn new(time: u64, seq: u32, slot: u32) -> Self {
        HeapKey((u128::from(time) << 64) | (u128::from(seq) << 32) | u128::from(slot))
    }

    #[inline]
    fn time(self) -> u64 {
        (self.0 >> 64) as u64
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }
}

/// A flat 4-ary min-heap of [`HeapKey`]s.
///
/// Replaces `std::collections::BinaryHeap`: four children per node halve
/// the tree depth, and all four siblings land on a single cache line of
/// 16-byte keys, so the sift-down that dominates `pop` touches about half
/// as many lines. Because the key order is *total* (unique `seq`), every
/// conforming heap pops in the identical sequence — swapping the arity
/// changes layout, not observable order (pinned by the equivalence
/// proptest in `tests/prop_sim.rs`).
#[derive(Default)]
struct Heap4 {
    keys: Vec<HeapKey>,
}

impl Heap4 {
    #[inline]
    fn len(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn peek(&self) -> Option<&HeapKey> {
        self.keys.first()
    }

    fn clear(&mut self) {
        self.keys.clear();
    }

    fn push(&mut self, key: HeapKey) {
        let mut i = self.keys.len();
        self.keys.push(key);
        while i > 0 {
            let parent = (i - 1) / 4;
            if key < self.keys[parent] {
                self.keys[i] = self.keys[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.keys[i] = key;
    }

    fn pop(&mut self) -> Option<HeapKey> {
        let top = *self.keys.first()?;
        let last = self.keys.pop().expect("non-empty heap has a last key");
        if !self.keys.is_empty() {
            self.sift_down(last);
        }
        Some(top)
    }

    /// Places `key` at the root and sifts it down to its position.
    fn sift_down(&mut self, key: HeapKey) {
        let keys = &mut self.keys[..];
        let mut i = 0;
        loop {
            let first = i * 4 + 1;
            if first >= keys.len() {
                break;
            }
            // One slice borrow covers all (≤4) children; the scan compares
            // packed `u128`s, so picking the min child is branch-cheap.
            let children = &keys[first..(first + 4).min(keys.len())];
            let mut min = first;
            let mut min_key = children[0];
            for (off, &child) in children.iter().enumerate().skip(1) {
                if child < min_key {
                    min = first + off;
                    min_key = child;
                }
            }
            if min_key < key {
                keys[i] = min_key;
                i = min;
            } else {
                break;
            }
        }
        keys[i] = key;
    }
}

enum Slot<T> {
    /// Free slot, linking to the next free one (`NIL` ends the list).
    Vacant { next: u32 },
    /// An event body waiting for its key to surface in the heap.
    Occupied(T),
}

/// A time-ordered event queue: an index heap over a free-list slab.
///
/// Entries pop in `(time, insertion order)` — ties on `time` resolve to
/// the earlier push, matching a `BinaryHeap<(Reverse(time, seq), body)>`
/// byte for byte while never moving the bodies during sifts.
///
/// # Examples
///
/// ```
/// use loki_sim::queue::EventQueue;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(20, "late");
/// q.push(10, "first");
/// q.push(10, "second"); // same time: pops after "first"
/// assert_eq!(q.peek_time(), Some(10));
/// assert_eq!(q.pop(), Some((10, "first")));
/// assert_eq!(q.pop(), Some((10, "second")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: Heap4,
    slab: Vec<Slot<T>>,
    free_head: u32,
    seq: u32,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Heap4::default(),
            slab: Vec::new(),
            free_head: NIL,
            seq: 0,
        }
    }

    /// Schedules `body` at `time`. Amortized allocation-free once the slab
    /// reaches the queue's high-water mark.
    pub fn push(&mut self, time: u64, body: T) {
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            match std::mem::replace(&mut self.slab[slot as usize], Slot::Occupied(body)) {
                Slot::Vacant { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list pointed at an occupied slot"),
            }
            slot
        } else {
            let slot = u32::try_from(self.slab.len()).expect("event slab overflow");
            self.slab.push(Slot::Occupied(body));
            slot
        };
        let seq = self.seq;
        // `seq` rewinds on every `reset` (one experiment), so 2^32 pushes
        // between resets is out of any real campaign's reach — reject it
        // loudly rather than let a wrapped sequence reorder ties.
        self.seq = self.seq.checked_add(1).expect("event sequence overflow");
        self.heap.push(HeapKey::new(time, seq, slot));
    }

    /// Pops the earliest entry as `(time, body)`.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let key = self.heap.pop()?;
        let slot = key.slot();
        let next = self.free_head;
        self.free_head = slot;
        match std::mem::replace(&mut self.slab[slot as usize], Slot::Vacant { next }) {
            Slot::Occupied(body) => Some((key.time(), body)),
            Slot::Vacant { .. } => unreachable!("heap key pointed at a vacant slot"),
        }
    }

    /// The scheduled time of the earliest entry.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|k| k.time())
    }

    /// The earliest entry as `(time, &body)`, without removing it.
    pub fn peek(&self) -> Option<(u64, &T)> {
        let key = self.heap.peek()?;
        match &self.slab[key.slot() as usize] {
            Slot::Occupied(body) => Some((key.time(), body)),
            Slot::Vacant { .. } => unreachable!("heap key pointed at a vacant slot"),
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Number of slab slots ever allocated — the high-water mark of
    /// concurrently pending events (slots are recycled, not dropped).
    pub fn slab_slots(&self) -> usize {
        self.slab.len()
    }

    /// Clears the queue while keeping every allocation: the heap's buffer
    /// and the slab's slots survive for the next run, so a simulation
    /// reused across experiments stops growing once the first experiment
    /// has established the high-water mark.
    ///
    /// Any still-queued bodies are dropped, the sequence counter rewinds
    /// to zero, and the free list is rebuilt in ascending slot order —
    /// pushes after a reset fill slots `0, 1, 2, …` exactly like pushes
    /// into a fresh queue, so a reset queue is observationally identical
    /// to a new one (pop order depends only on `(time, seq)`).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        let len = self.slab.len() as u32;
        for (i, slot) in self.slab.iter_mut().enumerate() {
            let next = if i as u32 + 1 == len {
                NIL
            } else {
                i as u32 + 1
            };
            *slot = Slot::Vacant { next };
        }
        self.free_head = if len == 0 { NIL } else { 0 };
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A live timer registration handle: slot plus the generation it was
/// allocated under. Packs into a `u64` for embedding in opaque
/// backend-agnostic timer handles.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TimerKey {
    slot: u32,
    gen: u32,
}

impl TimerKey {
    /// Packs the key into a `u64` (`generation << 32 | slot`).
    pub fn pack(self) -> u64 {
        (u64::from(self.gen) << 32) | u64::from(self.slot)
    }

    /// Unpacks a key produced by [`TimerKey::pack`].
    pub fn unpack(raw: u64) -> TimerKey {
        TimerKey {
            slot: raw as u32,
            gen: (raw >> 32) as u32,
        }
    }
}

/// Generation-stamped timer registrations.
///
/// Each armed timer holds a slot; the slot's generation is bumped when the
/// timer is cancelled or fires, so stale handles (and the timer's
/// still-queued pop event) fail a single integer compare. Slots recycle
/// through a free list: a watchdog that arms and cancels a timer per
/// message occupies O(concurrently-armed) slots forever, where the
/// tombstone-set design this replaces grew O(total-cancellations).
///
/// # Examples
///
/// ```
/// use loki_sim::queue::TimerSlab;
///
/// let mut timers = TimerSlab::new();
/// let a = timers.alloc();
/// assert!(timers.cancel(a));
/// assert!(!timers.fire(a)); // cancelled: the queued pop is skipped
/// let b = timers.alloc(); // reuses the slot under a new generation
/// assert!(timers.fire(b));
/// assert_eq!(timers.slots(), 1);
/// ```
pub struct TimerSlab {
    /// Current generation per slot. A handle is live iff its generation
    /// matches.
    gens: Vec<u32>,
    /// Free slots (retired by cancel or fire).
    free: Vec<u32>,
}

impl TimerSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        TimerSlab {
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Registers a new timer, reusing a retired slot when one exists.
    pub fn alloc(&mut self) -> TimerKey {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.gens.len()).expect("timer slab overflow");
                self.gens.push(0);
                slot
            }
        };
        TimerKey {
            slot,
            gen: self.gens[slot as usize],
        }
    }

    /// Cancels `key`. Returns whether it was still live; a handle that
    /// already fired or was already cancelled is a no-op (`false`).
    pub fn cancel(&mut self, key: TimerKey) -> bool {
        self.retire(key)
    }

    /// Pop-side liveness check: returns `true` (and retires the slot) when
    /// `key` is still live, `false` when it was cancelled in the meantime.
    pub fn fire(&mut self, key: TimerKey) -> bool {
        self.retire(key)
    }

    /// Whether `key` is still live (armed, neither fired nor cancelled),
    /// without retiring it.
    pub fn pending(&self, key: TimerKey) -> bool {
        self.gens.get(key.slot as usize) == Some(&key.gen)
    }

    fn retire(&mut self, key: TimerKey) -> bool {
        let gen = &mut self.gens[key.slot as usize];
        if *gen != key.gen {
            return false;
        }
        // Wrapping: a slot reused 2^32 times aliases an ancient handle,
        // which no real campaign holds across that many arms.
        *gen = gen.wrapping_add(1);
        self.free.push(key.slot);
        true
    }

    /// Total slots ever allocated — the high-water mark of concurrently
    /// armed timers, not of total arm/cancel traffic.
    pub fn slots(&self) -> usize {
        self.gens.len()
    }

    /// Number of currently live registrations.
    pub fn live(&self) -> usize {
        self.gens.len() - self.free.len()
    }

    /// Retires every registration while keeping the slot allocations.
    ///
    /// Each slot's generation is bumped, so every handle issued before the
    /// reset — live or not — fails its liveness check afterwards; the free
    /// list is rebuilt so allocations after a reset hand out slots
    /// `0, 1, 2, …` in the same order a fresh slab would.
    pub fn reset(&mut self) {
        self.free.clear();
        for slot in (0..self.gens.len() as u32).rev() {
            self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
            self.free.push(slot);
        }
    }
}

impl Default for TimerSlab {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_push_order() {
        let mut q = EventQueue::new();
        q.push(5, 'a');
        q.push(3, 'b');
        q.push(5, 'c');
        q.push(1, 'd');
        let order: Vec<(u64, char)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 'd'), (3, 'b'), (5, 'a'), (5, 'c')]);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.push(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        assert_eq!(q.slab_slots(), 1, "drain-refill must reuse one slot");
        for i in 0..8u64 {
            q.push(i, i);
        }
        assert_eq!(q.slab_slots(), 8);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn timer_generations_protect_reused_slots() {
        let mut timers = TimerSlab::new();
        let a = timers.alloc();
        let b = timers.alloc();
        assert_eq!(timers.live(), 2);
        assert!(timers.cancel(a));
        assert!(!timers.cancel(a), "double cancel is a no-op");
        let c = timers.alloc(); // reuses a's slot
        assert_eq!(timers.slots(), 2);
        assert!(!timers.fire(a), "stale handle must not fire the new timer");
        assert!(timers.fire(c));
        assert!(timers.fire(b));
        assert_eq!(timers.live(), 0);
    }

    #[test]
    fn queue_reset_keeps_slots_and_replays_like_fresh() {
        let mut q = EventQueue::new();
        for i in 0..16u64 {
            q.push(100 - i, i);
        }
        for _ in 0..4 {
            q.pop();
        }
        assert_eq!(q.slab_slots(), 16);

        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.slab_slots(), 16, "reset must keep the slab allocation");

        // A reset queue behaves exactly like a fresh one: same pop order
        // (seq rewound) and no slab growth while refilling up to the old
        // high-water mark.
        let mut fresh = EventQueue::new();
        for i in 0..16u64 {
            q.push(i % 5, i);
            fresh.push(i % 5, i);
        }
        assert_eq!(q.slab_slots(), 16, "refill within the mark must not grow");
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let fresh_drained: Vec<_> = std::iter::from_fn(|| fresh.pop()).collect();
        assert_eq!(drained, fresh_drained);
    }

    #[test]
    fn timer_reset_invalidates_old_handles_and_keeps_slots() {
        let mut timers = TimerSlab::new();
        let live = timers.alloc();
        let retired = timers.alloc();
        assert!(timers.cancel(retired));
        assert_eq!(timers.slots(), 2);

        timers.reset();
        assert_eq!(timers.live(), 0);
        assert_eq!(timers.slots(), 2, "reset must keep the slot allocations");
        assert!(!timers.fire(live), "pre-reset handles must be dead");
        assert!(!timers.cancel(retired));

        // Allocation order after a reset matches a fresh slab: slot 0
        // first, and no growth until the old high-water mark is passed.
        let a = timers.alloc();
        let b = timers.alloc();
        assert_eq!(timers.slots(), 2);
        assert!(timers.fire(a));
        assert!(timers.fire(b));
        let _ = timers.alloc();
        let _ = timers.alloc();
        let _ = timers.alloc();
        assert_eq!(timers.slots(), 3, "growth resumes past the mark");
    }

    #[test]
    fn timer_key_packs_roundtrip() {
        let key = TimerKey { slot: 7, gen: 42 };
        assert_eq!(TimerKey::unpack(key.pack()), key);
        let max = TimerKey {
            slot: u32::MAX - 1,
            gen: u32::MAX,
        };
        assert_eq!(TimerKey::unpack(max.pack()), max);
    }
}
