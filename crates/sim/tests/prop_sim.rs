//! Property tests for the discrete-event engine.

use loki_sim::config::{HostConfig, LatencyModel, NetworkConfig};
use loki_sim::engine::{Actor, ActorId, Ctx, Simulation};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Sends a burst of numbered messages to a sink.
struct Burst {
    target: ActorId,
    count: u32,
}
impl Actor<u32> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for i in 0..self.count {
            ctx.send(self.target, i);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: ActorId, _: u32) {}
}

struct Sink {
    log: Rc<RefCell<Vec<(u64, u32)>>>,
}
impl Actor<u32> for Sink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: ActorId, msg: u32) {
        self.log.borrow_mut().push((ctx.physical_now(), msg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FIFO per sender-receiver pair: messages sent in order arrive in
    /// order, whatever the sampled delays.
    #[test]
    fn per_pair_delivery_is_fifo(
        seed in any::<u64>(),
        count in 1u32..40,
        timeslice in 0u64..20_000_000,
        jitter in 0u64..1_000_000,
    ) {
        let mut sim: Simulation<u32> = Simulation::new(seed);
        sim.set_network(NetworkConfig {
            ipc: LatencyModel { base_ns: 10_000, jitter_ns: jitter },
            tcp: LatencyModel { base_ns: 100_000, jitter_ns: jitter },
        });
        let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(timeslice));
        let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(timeslice));
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.spawn(h2, Box::new(Sink { log: log.clone() }));
        sim.spawn(h1, Box::new(Burst { target: sink, count }));
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), count as usize);
        for (i, (_, msg)) in log.iter().enumerate() {
            prop_assert_eq!(*msg, i as u32, "out-of-order delivery");
        }
        // Delivery times strictly increase (FIFO tie-breaking).
        for w in log.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Identical seeds give identical traces; the engine is deterministic.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), count in 1u32..20) {
        let run = |seed: u64| {
            let mut sim: Simulation<u32> = Simulation::new(seed);
            let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(5_000_000));
            let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(5_000_000));
            let log = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.spawn(h2, Box::new(Sink { log: log.clone() }));
            sim.spawn(h1, Box::new(Burst { target: sink, count }));
            sim.run();
            let v = log.borrow().clone();
            (v, sim.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Virtual clocks are monotone along simulation time.
    #[test]
    fn clocks_are_monotone(
        offset in 0.0f64..1e9,
        ppm in -500.0f64..500.0,
        instants in prop::collection::vec(0u64..10_000_000_000, 2..20),
    ) {
        use loki_clock::params::{ClockParams, VirtualClock};
        let clock = VirtualClock::new(ClockParams::with_drift_ppm(offset, ppm));
        let mut sorted = instants.clone();
        sorted.sort_unstable();
        let mut last = None;
        for t in sorted {
            let reading = clock.read(t);
            if let Some(prev) = last {
                prop_assert!(reading >= prev);
            }
            last = Some(reading);
        }
    }
}
