//! Property tests for the discrete-event engine and its event core.

use loki_sim::batch::WorldSet;
use loki_sim::config::{HostConfig, LatencyModel, NetworkConfig};
use loki_sim::engine::{Actor, ActorId, Ctx, Simulation, WorldConfig};
use loki_sim::queue::{EventQueue, TimerKey, TimerSlab};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Sends a burst of numbered messages to a sink.
struct Burst {
    target: ActorId,
    count: u32,
}
impl Actor<u32> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for i in 0..self.count {
            ctx.send(self.target, i);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: ActorId, _: u32) {}
}

struct Sink {
    log: Rc<RefCell<Vec<(u64, u32)>>>,
}
impl Actor<u32> for Sink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _: ActorId, msg: u32) {
        self.log.borrow_mut().push((ctx.physical_now(), msg));
    }
}

/// One operation against both the index-heap queue and the reference
/// model (the engine's previous structures: a full-payload `BinaryHeap`
/// plus a cancelled-timer tombstone set).
#[derive(Clone, Debug)]
enum QOp {
    /// Schedule a message `dt % 4` ns ahead (small range forces time ties).
    Push(u8),
    /// Arm a timer `dt % 4` ns ahead.
    Timer(u8),
    /// Cancel the n-th currently live timer (mod the live count).
    Cancel(u8),
    /// Pop the next live entry.
    Pop,
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        any::<u8>().prop_map(QOp::Push),
        any::<u8>().prop_map(QOp::Timer),
        any::<u8>().prop_map(QOp::Cancel),
        Just(QOp::Pop),
    ]
}

/// A queued entry on the new side: either a plain message or a timer
/// carrying its slab key (the engine stores `TimerId`s the same way).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Item {
    Msg(u32),
    Timer(u32, TimerKey),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The index-heap queue plus the generation-stamped timer slab pop in
    /// exactly the order of the engine's previous core — a full-payload
    /// `BinaryHeap` ordered by `(time, seq)` with a `HashSet` of cancelled
    /// timer ids — under arbitrary interleavings of push, timer arm,
    /// cancel, and pop, including time ties and cancels of queued timers.
    #[test]
    fn event_core_matches_reference_heap_model(
        ops in prop::collection::vec(qop_strategy(), 1..120),
    ) {
        // New core.
        let mut queue: EventQueue<Item> = EventQueue::new();
        let mut timers = TimerSlab::new();
        // Reference model (the pre-index-heap structures).
        let mut ref_heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut ref_seq = 0u64;
        let mut ref_cancelled: HashSet<u32> = HashSet::new();

        // Shared bookkeeping so both sides cancel the *same* timer.
        let mut live: Vec<(u32, TimerKey)> = Vec::new();
        let mut label = 0u32;
        let mut now = 0u64;
        let mut popped_new: Vec<Option<(u64, u32)>> = Vec::new();
        let mut popped_ref: Vec<Option<(u64, u32)>> = Vec::new();

        let pop_new = |queue: &mut EventQueue<Item>,
                           timers: &mut TimerSlab,
                           live: &mut Vec<(u32, TimerKey)>|
         -> Option<(u64, u32)> {
            loop {
                match queue.pop() {
                    None => return None,
                    Some((t, Item::Msg(l))) => return Some((t, l)),
                    Some((t, Item::Timer(l, key))) => {
                        if timers.fire(key) {
                            live.retain(|&(ll, _)| ll != l);
                            return Some((t, l));
                        }
                        // Cancelled while queued: skip, like the engine.
                    }
                }
            }
        };
        let pop_ref = |ref_heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
                           ref_cancelled: &mut HashSet<u32>|
         -> Option<(u64, u32)> {
            loop {
                match ref_heap.pop() {
                    None => return None,
                    Some(std::cmp::Reverse((t, _, l))) => {
                        if ref_cancelled.remove(&l) {
                            continue;
                        }
                        return Some((t, l));
                    }
                }
            }
        };

        for op in ops {
            now += 1;
            match op {
                QOp::Push(dt) => {
                    let t = now + u64::from(dt % 4);
                    queue.push(t, Item::Msg(label));
                    ref_heap.push(std::cmp::Reverse((t, ref_seq, label)));
                    ref_seq += 1;
                    label += 1;
                }
                QOp::Timer(dt) => {
                    let t = now + u64::from(dt % 4);
                    let key = timers.alloc();
                    queue.push(t, Item::Timer(label, key));
                    ref_heap.push(std::cmp::Reverse((t, ref_seq, label)));
                    ref_seq += 1;
                    live.push((label, key));
                    label += 1;
                }
                QOp::Cancel(i) => {
                    if !live.is_empty() {
                        let (l, key) = live.remove(i as usize % live.len());
                        prop_assert!(timers.cancel(key));
                        ref_cancelled.insert(l);
                    }
                }
                QOp::Pop => {
                    popped_new.push(pop_new(&mut queue, &mut timers, &mut live));
                    popped_ref.push(pop_ref(&mut ref_heap, &mut ref_cancelled));
                }
            }
        }
        // Drain both completely: the full pop sequence must match.
        loop {
            let a = pop_new(&mut queue, &mut timers, &mut live);
            let b = pop_ref(&mut ref_heap, &mut ref_cancelled);
            let done = a.is_none() && b.is_none();
            popped_new.push(a);
            popped_ref.push(b);
            if done {
                break;
            }
        }
        prop_assert_eq!(popped_new, popped_ref);
        // Slot recycling: the slab never exceeds the number of timers that
        // were ever live at once (bounded by total arms, unaffected by
        // cancel volume).
        prop_assert!(timers.slots() <= label as usize);
    }

    /// FIFO per sender-receiver pair: messages sent in order arrive in
    /// order, whatever the sampled delays.
    #[test]
    fn per_pair_delivery_is_fifo(
        seed in any::<u64>(),
        count in 1u32..40,
        timeslice in 0u64..20_000_000,
        jitter in 0u64..1_000_000,
    ) {
        let mut sim: Simulation<u32> = Simulation::new(seed);
        sim.set_network(NetworkConfig {
            ipc: LatencyModel { base_ns: 10_000, jitter_ns: jitter },
            tcp: LatencyModel { base_ns: 100_000, jitter_ns: jitter },
        });
        let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(timeslice));
        let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(timeslice));
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.spawn(h2, Box::new(Sink { log: log.clone() }));
        sim.spawn(h1, Box::new(Burst { target: sink, count }));
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), count as usize);
        for (i, (_, msg)) in log.iter().enumerate() {
            prop_assert_eq!(*msg, i as u32, "out-of-order delivery");
        }
        // Delivery times strictly increase (FIFO tie-breaking).
        for w in log.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Identical seeds give identical traces; the engine is deterministic.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), count in 1u32..20) {
        let run = |seed: u64| {
            let mut sim: Simulation<u32> = Simulation::new(seed);
            let h1 = sim.add_host(HostConfig::new("h1").timeslice_ns(5_000_000));
            let h2 = sim.add_host(HostConfig::new("h2").timeslice_ns(5_000_000));
            let log = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.spawn(h2, Box::new(Sink { log: log.clone() }));
            sim.spawn(h1, Box::new(Burst { target: sink, count }));
            sim.run();
            let v = log.borrow().clone();
            (v, sim.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// `WorldSet` interleaving of random independent event schedules is
    /// behaviour-preserving: each world ends in exactly the state it
    /// reaches when run to completion alone.
    #[test]
    fn worldset_interleaving_matches_isolated_runs(
        worlds in prop::collection::vec(
            (any::<u64>(), 1u32..30, 0u64..20_000_000, 0u64..1_000_000),
            1..8,
        ),
    ) {
        let mut config = WorldConfig::new();
        config.set_network(NetworkConfig {
            ipc: LatencyModel { base_ns: 10_000, jitter_ns: 500_000 },
            tcp: LatencyModel { base_ns: 100_000, jitter_ns: 500_000 },
        });
        // Give every world the max timeslice drawn so the shared config is
        // fixed while seeds/counts still vary per world.
        let slice = worlds.iter().map(|w| w.2).max().unwrap_or(0);
        let h1 = config.add_host(HostConfig::new("h1").timeslice_ns(slice)).unwrap();
        let h2 = config.add_host(HostConfig::new("h2").timeslice_ns(slice)).unwrap();
        let config = Arc::new(config);

        let build = |&(seed, count, _, _): &(u64, u32, u64, u64)| {
            let mut sim: Simulation<u32> = Simulation::with_config(config.clone(), seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            let sink = sim.spawn(h2, Box::new(Sink { log: log.clone() }));
            sim.spawn(h1, Box::new(Burst { target: sink, count }));
            (sim, log)
        };

        let isolated: Vec<_> = worlds
            .iter()
            .map(|w| {
                let (mut sim, log) = build(w);
                sim.run();
                let delivered = log.borrow().clone();
                (sim.now(), sim.events_processed(), delivered)
            })
            .collect();

        let mut set = WorldSet::new();
        let logs: Vec<_> = worlds
            .iter()
            .map(|w| {
                let (sim, log) = build(w);
                set.push(sim);
                log
            })
            .collect();
        set.run();
        for (i, log) in logs.iter().enumerate() {
            prop_assert!(set.drained(i));
            let sim = set.world(i);
            let delivered = log.borrow().clone();
            prop_assert_eq!(
                &(sim.now(), sim.events_processed(), delivered),
                &isolated[i],
                "world {} diverged under interleaving", i
            );
        }
    }

    /// Virtual clocks are monotone along simulation time.
    #[test]
    fn clocks_are_monotone(
        offset in 0.0f64..1e9,
        ppm in -500.0f64..500.0,
        instants in prop::collection::vec(0u64..10_000_000_000, 2..20),
    ) {
        use loki_clock::params::{ClockParams, VirtualClock};
        let clock = VirtualClock::new(ClockParams::with_drift_ppm(offset, ppm));
        let mut sorted = instants.clone();
        sorted.sort_unstable();
        let mut last = None;
        for t in sorted {
            let reading = clock.read(t);
            if let Some(prev) = last {
                prop_assert!(reading >= prev);
            }
            last = Some(reading);
        }
    }
}
