//! Assembling a study from its specification files — the thesis's
//! file-driven workflow (§5.6).
//!
//! The user of the original Loki prepares, per state machine, a *study
//! file* naming the node file, state machine specification file, and fault
//! specification file. [`load_study`] performs the same assembly from
//! in-memory file contents (I/O-free, so it works identically for on-disk
//! files, embedded fixtures, and tests); [`load_study_dir`] reads the
//! conventional directory layout:
//!
//! ```text
//! <dir>/nodes            — the node file (<SM> [<host>] per line)
//! <dir>/<sm>.sm          — one state machine specification per machine
//! <dir>/<sm>.flt         — one fault specification per machine (optional)
//! <dir>/actions          — fault-name → probe-action table (optional; see
//!                          [`crate::files::parse_action_file`])
//! <dir>/budget           — per-experiment budgets and retry policy
//!                          (optional; see [`crate::files::parse_budget_file`])
//! ```

use crate::error::ParseError;
use crate::files::{
    parse_action_file, parse_budget_file, parse_fault_spec, parse_node_file, write_action_file,
    write_budget_file, BudgetSpec,
};
use crate::sm_spec;
use loki_core::probe::ActionProbe;
use loki_core::spec::StudyDef;
use std::collections::BTreeMap;
use std::path::Path;

/// One machine's specification sources.
#[derive(Clone, Debug, Default)]
pub struct MachineSources {
    /// The state machine specification file contents.
    pub sm_spec: String,
    /// The fault specification file contents (may be empty).
    pub fault_spec: String,
}

/// Assembles a [`StudyDef`] from file contents: the node file plus one
/// [`MachineSources`] per machine.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered. (Cross-reference
/// validation — unknown states, events, machines — happens later in
/// [`loki_core::study::Study::compile`].)
///
/// # Examples
///
/// ```
/// use loki_spec::campaign_loader::{load_study, MachineSources};
/// use std::collections::BTreeMap;
///
/// let node_file = "a host1\nb host2\n";
/// let spec = "\
/// global_state_list
/// IDLE
/// BUSY
/// end_global_state_list
/// event_list
/// GO
/// end_event_list
/// state IDLE notify b
/// GO BUSY
/// ";
/// let mut machines = BTreeMap::new();
/// machines.insert("a".to_owned(), MachineSources {
///     sm_spec: spec.to_owned(),
///     fault_spec: "f1 (a:BUSY) once\n".to_owned(),
/// });
/// machines.insert("b".to_owned(), MachineSources {
///     sm_spec: spec.replace("notify b", "notify a"),
///     fault_spec: String::new(),
/// });
/// let def = load_study("demo", node_file, &machines)?;
/// assert_eq!(def.machines.len(), 2);
/// assert_eq!(def.faults.len(), 1);
/// assert_eq!(def.placements.len(), 2);
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn load_study(
    name: &str,
    node_file: &str,
    machines: &BTreeMap<String, MachineSources>,
) -> Result<StudyDef, ParseError> {
    let mut def = StudyDef::new(name);
    for (machine, sources) in machines {
        def.machines
            .push(sm_spec::parse(machine, &sources.sm_spec)?);
        if !sources.fault_spec.trim().is_empty() {
            def.faults
                .extend(parse_fault_spec(machine, &sources.fault_spec)?);
        }
    }
    def.placements = parse_node_file(node_file)?;
    Ok(def)
}

/// Loads a study from the conventional directory layout (see module docs).
///
/// # Errors
///
/// Returns a [`ParseError`] for unreadable files (wrapped with the path)
/// or malformed contents.
pub fn load_study_dir(name: &str, dir: &Path) -> Result<StudyDef, ParseError> {
    let read = |path: &Path| -> Result<String, ParseError> {
        std::fs::read_to_string(path)
            .map_err(|e| ParseError::eof(format!("cannot read {}: {e}", path.display())))
    };
    let node_file = read(&dir.join("nodes"))?;
    let placements = parse_node_file(&node_file)?;
    let mut machines = BTreeMap::new();
    for p in &placements {
        if machines.contains_key(&p.sm) {
            continue;
        }
        let sm_spec = read(&dir.join(format!("{}.sm", p.sm)))?;
        let fault_path = dir.join(format!("{}.flt", p.sm));
        let fault_spec = if fault_path.exists() {
            read(&fault_path)?
        } else {
            String::new()
        };
        machines.insert(
            p.sm.clone(),
            MachineSources {
                sm_spec,
                fault_spec,
            },
        );
    }
    load_study(name, &node_file, &machines)
}

/// [`load_study_dir`] plus the optional `<dir>/actions` probe table: what
/// each named fault *does* when injected. A missing actions file yields an
/// empty [`ActionProbe`] (applications fall back to their default action,
/// typically crash).
///
/// # Errors
///
/// Returns a [`ParseError`] exactly as [`load_study_dir`], plus any
/// action-file syntax error.
pub fn load_study_dir_with_actions(
    name: &str,
    dir: &Path,
) -> Result<(StudyDef, ActionProbe), ParseError> {
    let def = load_study_dir(name, dir)?;
    let actions_path = dir.join("actions");
    let probe = if actions_path.exists() {
        let text = std::fs::read_to_string(&actions_path)
            .map_err(|e| ParseError::eof(format!("cannot read {}: {e}", actions_path.display())))?;
        parse_action_file(&text)?
    } else {
        ActionProbe::new()
    };
    Ok((def, probe))
}

/// Loads the optional `<dir>/budget` file: per-experiment resource budgets
/// and retry policy. A missing file yields the default (unbounded, no
/// retry) [`BudgetSpec`], mirroring how a missing actions file yields an
/// empty probe.
///
/// # Errors
///
/// Returns a [`ParseError`] for an unreadable or malformed budget file.
pub fn load_budget_dir(dir: &Path) -> Result<BudgetSpec, ParseError> {
    let path = dir.join("budget");
    if !path.exists() {
        return Ok(BudgetSpec::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ParseError::eof(format!("cannot read {}: {e}", path.display())))?;
    parse_budget_file(&text)
}

/// Writes the `<dir>/budget` file (omitted when `spec` is all-default,
/// mirroring [`load_budget_dir`]).
///
/// # Errors
///
/// Returns a [`ParseError`] wrapping any I/O failure.
pub fn write_budget_dir(spec: &BudgetSpec, dir: &Path) -> Result<(), ParseError> {
    if *spec == BudgetSpec::default() {
        return Ok(());
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| ParseError::eof(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join("budget");
    std::fs::write(&path, write_budget_file(spec))
        .map_err(|e| ParseError::eof(format!("cannot write {}: {e}", path.display())))
}

/// [`write_study_dir`] plus the `<dir>/actions` probe table (omitted when
/// `probe` is empty, mirroring [`load_study_dir_with_actions`]).
///
/// # Errors
///
/// Returns a [`ParseError`] wrapping any I/O failure.
pub fn write_study_dir_with_actions(
    def: &StudyDef,
    probe: &ActionProbe,
    dir: &Path,
) -> Result<(), ParseError> {
    write_study_dir(def, dir)?;
    if !probe.is_empty() {
        let path = dir.join("actions");
        std::fs::write(&path, write_action_file(probe))
            .map_err(|e| ParseError::eof(format!("cannot write {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Writes a study back to the conventional directory layout.
///
/// # Errors
///
/// Returns a [`ParseError`] wrapping any I/O failure.
pub fn write_study_dir(def: &StudyDef, dir: &Path) -> Result<(), ParseError> {
    let write = |path: &Path, contents: &str| -> Result<(), ParseError> {
        std::fs::write(path, contents)
            .map_err(|e| ParseError::eof(format!("cannot write {}: {e}", path.display())))
    };
    std::fs::create_dir_all(dir)
        .map_err(|e| ParseError::eof(format!("cannot create {}: {e}", dir.display())))?;
    write(
        &dir.join("nodes"),
        &crate::files::write_node_file(&def.placements),
    )?;
    for m in &def.machines {
        write(&dir.join(format!("{}.sm", m.name)), &sm_spec::write(m))?;
        let faults: Vec<_> = def
            .faults
            .iter()
            .filter(|f| f.owner == m.name)
            .cloned()
            .collect();
        if !faults.is_empty() {
            write(
                &dir.join(format!("{}.flt", m.name)),
                &crate::files::write_fault_spec(&faults),
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_core::study::Study;

    fn sample_sources() -> (String, BTreeMap<String, MachineSources>) {
        let node_file = "a host1\nb host2\n".to_owned();
        let spec_a = "\
global_state_list
IDLE
BUSY
end_global_state_list
event_list
GO
DONE
end_event_list
state IDLE notify b
GO BUSY
state BUSY notify b
DONE EXIT
";
        let spec_b = spec_a.replace("notify b", "notify a");
        let mut machines = BTreeMap::new();
        machines.insert(
            "a".to_owned(),
            MachineSources {
                sm_spec: spec_a.to_owned(),
                fault_spec: String::new(),
            },
        );
        machines.insert(
            "b".to_owned(),
            MachineSources {
                sm_spec: spec_b,
                fault_spec: "f1 (a:BUSY) always\n".to_owned(),
            },
        );
        (node_file, machines)
    }

    #[test]
    fn loads_and_compiles() {
        let (node_file, machines) = sample_sources();
        let def = load_study("s", &node_file, &machines).unwrap();
        let study = Study::compile(&def).unwrap();
        assert_eq!(study.num_machines(), 2);
        assert_eq!(study.faults.len(), 1);
        let b = study.sm_id("b").unwrap();
        assert_eq!(study.faults_owned_by(b).len(), 1);
    }

    #[test]
    fn propagates_parse_errors() {
        let (node_file, mut machines) = sample_sources();
        machines.get_mut("a").unwrap().sm_spec = "garbage".to_owned();
        assert!(load_study("s", &node_file, &machines).is_err());
        let (_, machines) = sample_sources();
        assert!(load_study("s", "a b c\n", &machines).is_err());
    }

    #[test]
    fn directory_roundtrip() {
        let (node_file, machines) = sample_sources();
        let def = load_study("s", &node_file, &machines).unwrap();

        let dir = std::env::temp_dir().join(format!("loki-spec-test-{}", std::process::id()));
        write_study_dir(&def, &dir).unwrap();
        let reloaded = load_study_dir("s", &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(reloaded.machines, def.machines);
        assert_eq!(reloaded.faults, def.faults);
        assert_eq!(reloaded.placements, def.placements);
    }

    #[test]
    fn missing_files_reported_with_path() {
        let err = load_study_dir("s", Path::new("/nonexistent/loki-dir")).unwrap_err();
        assert!(err.message.contains("nodes"));
    }

    #[test]
    fn directory_roundtrip_with_actions() {
        use loki_core::probe::FaultAction;

        let (node_file, machines) = sample_sources();
        let def = load_study("s", &node_file, &machines).unwrap();
        let probe = ActionProbe::new()
            .on(
                "f1",
                FaultAction::Partition {
                    groups: vec![vec!["host1".to_owned()], vec!["host2".to_owned()]],
                },
            )
            .on("f2", FaultAction::Heal);

        let dir = std::env::temp_dir().join(format!("loki-spec-actions-{}", std::process::id()));
        write_study_dir_with_actions(&def, &probe, &dir).unwrap();
        let (reloaded, reprobe) = load_study_dir_with_actions("s", &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(reloaded.faults, def.faults);
        assert_eq!(reprobe.action_for("f2"), Some(&FaultAction::Heal));
        assert_eq!(reprobe.action_for("f1"), probe.action_for("f1"));
    }

    #[test]
    fn budget_dir_roundtrip_and_default() {
        let dir = std::env::temp_dir().join(format!("loki-spec-budget-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        // Missing file → default (unbounded) budgets; default spec writes
        // nothing.
        write_budget_dir(&BudgetSpec::default(), &dir).unwrap();
        assert!(!dir.join("budget").exists());
        assert_eq!(load_budget_dir(&dir).unwrap(), BudgetSpec::default());

        let spec = BudgetSpec {
            max_virtual_time_ns: Some(5_000_000_000),
            max_events: Some(200_000),
            max_retries: Some(1),
            retry_backoff_ms: None,
        };
        write_budget_dir(&spec, &dir).unwrap();
        let reloaded = load_budget_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(reloaded, spec);
    }

    #[test]
    fn missing_actions_file_yields_empty_probe() {
        let (node_file, machines) = sample_sources();
        let def = load_study("s", &node_file, &machines).unwrap();
        let dir = std::env::temp_dir().join(format!("loki-spec-noact-{}", std::process::id()));
        write_study_dir(&def, &dir).unwrap();
        let (_, probe) = load_study_dir_with_actions("s", &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(probe.is_empty());
    }
}
