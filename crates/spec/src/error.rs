//! Parse errors with line information.

use std::error::Error;
use std::fmt;

/// A parse error in one of Loki's textual formats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error occurred (0 when not tied to a
    /// specific line, e.g. an unexpected end of input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line` with `message`.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error not tied to a line (e.g. unexpected EOF).
    pub fn eof(message: impl Into<String>) -> Self {
        ParseError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::at(7, "bad token");
        assert_eq!(e.to_string(), "parse error at line 7: bad token");
        let e = ParseError::eof("unexpected end of input");
        assert_eq!(e.to_string(), "parse error: unexpected end of input");
    }
}
