//! Parser for Boolean fault expressions (§3.5.5).
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! expr   := term ( '|' term )*
//! term   := factor ( '&' factor )*
//! factor := '~' factor | '(' inner ')'
//! inner  := NAME ':' NAME        -- an atom, e.g. (SM1:ELECT)
//!         | expr                 -- a parenthesized subexpression
//! ```
//!
//! This accepts exactly the thesis's examples, e.g.
//! `((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))`, and round-trips
//! with [`FaultExpr`]'s `Display` implementation.

use crate::error::ParseError;
use loki_core::fault::FaultExpr;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    LParen,
    RParen,
    And,
    Or,
    Not,
    Colon,
    Name(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
            }
            '(' => {
                tokens.push(Token::LParen);
                chars.next();
            }
            ')' => {
                tokens.push(Token::RParen);
                chars.next();
            }
            '&' => {
                tokens.push(Token::And);
                chars.next();
            }
            '|' => {
                tokens.push(Token::Or);
                chars.next();
            }
            '~' | '!' => {
                tokens.push(Token::Not);
                chars.next();
            }
            ':' => {
                tokens.push(Token::Colon);
                chars.next();
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Name(name));
            }
            other => {
                return Err(ParseError::at(
                    1,
                    format!("unexpected character `{other}` at offset {i} in fault expression"),
                ))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            Some(got) => Err(ParseError::at(1, format!("expected {what}, found {got:?}"))),
            None => Err(ParseError::eof(format!("expected {what}"))),
        }
    }

    fn expr(&mut self) -> Result<FaultExpr, ParseError> {
        let mut lhs = self.term()?;
        while self.peek() == Some(&Token::Or) {
            self.next();
            let rhs = self.term()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<FaultExpr, ParseError> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&Token::And) {
            self.next();
            let rhs = self.factor()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<FaultExpr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(self.factor()?.not())
            }
            Some(Token::LParen) => {
                self.next();
                // Either an atom `NAME : NAME` or a nested expression.
                if let (Some(Token::Name(_)), Some(Token::Colon)) =
                    (self.tokens.get(self.pos), self.tokens.get(self.pos + 1))
                {
                    let sm = match self.next() {
                        Some(Token::Name(n)) => n,
                        _ => unreachable!("peeked"),
                    };
                    self.expect(&Token::Colon, "`:`")?;
                    let state = match self.next() {
                        Some(Token::Name(n)) => n,
                        Some(other) => {
                            return Err(ParseError::at(
                                1,
                                format!("expected state name after `:`, found {other:?}"),
                            ))
                        }
                        None => return Err(ParseError::eof("expected state name after `:`")),
                    };
                    self.expect(&Token::RParen, "`)`")?;
                    Ok(FaultExpr::atom(&sm, &state))
                } else {
                    let inner = self.expr()?;
                    self.expect(&Token::RParen, "`)`")?;
                    Ok(inner)
                }
            }
            Some(other) => Err(ParseError::at(
                1,
                format!("expected `(` or `~` in fault expression, found {other:?}"),
            )),
            None => Err(ParseError::eof("unexpected end of fault expression")),
        }
    }
}

/// Parses a Boolean fault expression.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed syntax.
///
/// # Examples
///
/// ```
/// use loki_spec::expr::parse_expr;
///
/// let e = parse_expr("((SM1:ELECT) & (SM2:FOLLOW))")?;
/// assert_eq!(e.to_string(), "((SM1:ELECT) & (SM2:FOLLOW))");
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn parse_expr(input: &str) -> Result<FaultExpr, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::eof("empty fault expression"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::at(
            1,
            format!(
                "trailing tokens after fault expression: {:?}",
                &p.tokens[p.pos..]
            ),
        ));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        assert_eq!(
            parse_expr("(black:LEAD)").unwrap(),
            FaultExpr::atom("black", "LEAD")
        );
        assert_eq!(
            parse_expr("( SM1 : ELECT )").unwrap(),
            FaultExpr::atom("SM1", "ELECT")
        );
    }

    #[test]
    fn thesis_examples() {
        let e = parse_expr("((SM1:ELECT) & (SM2:FOLLOW))").unwrap();
        assert_eq!(
            e,
            FaultExpr::atom("SM1", "ELECT").and(FaultExpr::atom("SM2", "FOLLOW"))
        );
        let e = parse_expr("((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))").unwrap();
        assert_eq!(
            e,
            FaultExpr::atom("black", "CRASH")
                .and(FaultExpr::atom("green", "FOLLOW").or(FaultExpr::atom("green", "ELECT")))
        );
        let e = parse_expr("((green:FOLLOW) | (green:ELECT))").unwrap();
        assert_eq!(
            e,
            FaultExpr::atom("green", "FOLLOW").or(FaultExpr::atom("green", "ELECT"))
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse_expr("(a:X) | (b:Y) & (c:Z)").unwrap();
        assert_eq!(
            e,
            FaultExpr::atom("a", "X").or(FaultExpr::atom("b", "Y").and(FaultExpr::atom("c", "Z")))
        );
    }

    #[test]
    fn negation() {
        let e = parse_expr("~(a:X)").unwrap();
        assert_eq!(e, FaultExpr::atom("a", "X").not());
        let e = parse_expr("~~(a:X)").unwrap();
        assert_eq!(e, FaultExpr::atom("a", "X").not().not());
        let e = parse_expr("~((a:X) & (b:Y))").unwrap();
        assert_eq!(
            e,
            FaultExpr::atom("a", "X")
                .and(FaultExpr::atom("b", "Y"))
                .not()
        );
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "(black:LEAD)",
            "((SM1:ELECT) & (SM2:FOLLOW))",
            "((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))",
            "~((a:X) | ~(b:Y))",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("(a:)").is_err());
        assert!(parse_expr("(a:X").is_err());
        assert!(parse_expr("(a:X) &").is_err());
        assert!(parse_expr("(a:X) (b:Y)").is_err());
        assert!(parse_expr("(a:X) @ (b:Y)").is_err());
    }

    #[test]
    fn names_with_punctuation() {
        let e = parse_expr("(node-1:STATE_2)").unwrap();
        assert_eq!(e, FaultExpr::atom("node-1", "STATE_2"));
    }
}
