//! The small line-oriented configuration files of the Loki runtime.
//!
//! * **fault specification** (§3.5.5): `<FaultName> <BooleanExpr> <once|always>`
//! * **node file** (§3.5.1): `<SM NickName> [<HostName>]`
//! * **machines file** (§5.6): one host name per line
//! * **daemon startup file** (§3.5.2): `<HostName> <PortNumber>`
//! * **daemon contact file** (§3.5.2): `<HostName> <SharedMemoryID> <SemaphoreID>`
//! * **study file** (§5.6): six fixed lines naming the machine and its
//!   input files
//! * **action file**: `<FaultName> <action> [args…]` mapping fault names
//!   to probe [`FaultAction`]s (see [`parse_action_file`])
//!
//! All parsers ignore blank lines and `#` comments.

use crate::error::ParseError;
use crate::expr::parse_expr;
use loki_core::fault::Trigger;
use loki_core::probe::{ActionProbe, FaultAction};
use loki_core::spec::{FaultSpec, NodePlacement};
use serde::{Deserialize, Serialize};

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let line = match raw.find('#') {
            Some(idx) => &raw[..idx],
            None => raw,
        }
        .trim();
        (!line.is_empty()).then_some((i + 1, line))
    })
}

/// Parses a fault specification file; `owner` is the state machine whose
/// probe injects these faults (fault files are per-machine, §3.5.5).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed lines or expressions.
///
/// # Examples
///
/// ```
/// use loki_spec::files::parse_fault_spec;
///
/// let faults = parse_fault_spec(
///     "green",
///     "gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once\n",
/// )?;
/// assert_eq!(faults[0].name, "gfault2");
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn parse_fault_spec(owner: &str, text: &str) -> Result<Vec<FaultSpec>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        let name = line.split_whitespace().next().expect("non-empty");
        let rest = line[name.len()..].trim();
        let trigger_word = rest.split_whitespace().last().ok_or_else(|| {
            ParseError::at(lineno, "fault line needs an expression and a trigger")
        })?;
        let trigger = match trigger_word {
            "once" => Trigger::Once,
            "always" => Trigger::Always,
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("expected `once` or `always`, found `{other}`"),
                ))
            }
        };
        let expr_text = rest[..rest.len() - trigger_word.len()].trim();
        let expr = parse_expr(expr_text)
            .map_err(|e| ParseError::at(lineno, format!("in fault `{name}`: {}", e.message)))?;
        out.push(FaultSpec {
            owner: owner.to_owned(),
            name: name.to_owned(),
            expr,
            trigger,
        });
    }
    Ok(out)
}

/// Writes a fault specification file.
pub fn write_fault_spec(faults: &[FaultSpec]) -> String {
    let mut out = String::new();
    for f in faults {
        out.push_str(&format!("{} {} {}\n", f.name, f.expr, f.trigger));
    }
    out
}

/// Parses a node file: `<SM NickName> [<HostName>]` per line (§3.5.1).
///
/// # Errors
///
/// Returns a [`ParseError`] for lines with more than two tokens.
pub fn parse_node_file(text: &str) -> Result<Vec<NodePlacement>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        let mut tokens = line.split_whitespace();
        let sm = tokens.next().expect("non-empty").to_owned();
        let host = tokens.next().map(str::to_owned);
        if tokens.next().is_some() {
            return Err(ParseError::at(
                lineno,
                "node file lines have at most two fields",
            ));
        }
        out.push(NodePlacement { sm, host });
    }
    Ok(out)
}

/// Writes a node file.
pub fn write_node_file(placements: &[NodePlacement]) -> String {
    let mut out = String::new();
    for p in placements {
        match &p.host {
            Some(h) => out.push_str(&format!("{} {}\n", p.sm, h)),
            None => out.push_str(&format!("{}\n", p.sm)),
        }
    }
    out
}

/// Parses a machines file: one host name per line (§5.6).
pub fn parse_machines_file(text: &str) -> Vec<String> {
    content_lines(text).map(|(_, l)| l.to_owned()).collect()
}

/// Writes a machines file.
pub fn write_machines_file(hosts: &[String]) -> String {
    let mut out = String::new();
    for h in hosts {
        out.push_str(h);
        out.push('\n');
    }
    out
}

/// One entry of the daemon startup file: where each local daemon listens.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonEndpoint {
    /// Host name.
    pub host: String,
    /// TCP port of the local daemon.
    pub port: u16,
}

/// Parses a daemon startup file: `<HostName> <PortNumber>` (§3.5.2).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed ports or extra fields.
pub fn parse_daemon_startup(text: &str) -> Result<Vec<DaemonEndpoint>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        let mut tokens = line.split_whitespace();
        let host = tokens.next().expect("non-empty").to_owned();
        let port_str = tokens
            .next()
            .ok_or_else(|| ParseError::at(lineno, "daemon startup line needs a port"))?;
        let port: u16 = port_str
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("invalid port `{port_str}`")))?;
        if tokens.next().is_some() {
            return Err(ParseError::at(lineno, "unexpected extra field"));
        }
        out.push(DaemonEndpoint { host, port });
    }
    Ok(out)
}

/// Writes a daemon startup file.
pub fn write_daemon_startup(endpoints: &[DaemonEndpoint]) -> String {
    let mut out = String::new();
    for e in endpoints {
        out.push_str(&format!("{} {}\n", e.host, e.port));
    }
    out
}

/// One entry of the daemon contact file: the IPC identifiers a state
/// machine uses to reach its local daemon.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonContact {
    /// Host name.
    pub host: String,
    /// Shared memory identifier.
    pub shm_id: u64,
    /// Semaphore identifier.
    pub sem_id: u64,
}

/// Parses a daemon contact file: `<HostName> <SharedMemoryID> <SemaphoreID>`
/// (§3.5.2).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed identifiers or missing fields.
pub fn parse_daemon_contact(text: &str) -> Result<Vec<DaemonContact>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() != 3 {
            return Err(ParseError::at(lineno, "expected `<host> <shmid> <semid>`"));
        }
        let shm_id = tokens[1]
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("invalid shm id `{}`", tokens[1])))?;
        let sem_id = tokens[2]
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("invalid sem id `{}`", tokens[2])))?;
        out.push(DaemonContact {
            host: tokens[0].to_owned(),
            shm_id,
            sem_id,
        });
    }
    Ok(out)
}

/// Writes a daemon contact file.
pub fn write_daemon_contact(contacts: &[DaemonContact]) -> String {
    let mut out = String::new();
    for c in contacts {
        out.push_str(&format!("{} {} {}\n", c.host, c.shm_id, c.sem_id));
    }
    out
}

fn parse_f64(lineno: usize, field: &str, s: &str) -> Result<f64, ParseError> {
    s.parse()
        .map_err(|_| ParseError::at(lineno, format!("invalid {field} `{s}`")))
}

fn parse_u64(lineno: usize, field: &str, s: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ParseError::at(lineno, format!("invalid {field} `{s}`")))
}

/// Parses an action file mapping fault names to probe
/// [`FaultAction`]s — the campaign-file syntax for what each named fault
/// *does* when injected (the fault specification files only say *when*).
/// One line per fault:
///
/// ```text
/// <fault> crash
/// <fault> crash_p <activation> <dormancy_ns>
/// <fault> hang <duration_ns>
/// <fault> drop <count>
/// <fault> corrupt_state <target>
/// <fault> custom <name>
/// <fault> partition <host…> | <host…> [| …]
/// <fault> link <from> <to> [drop=P] [dup=P] [corrupt=P] [reorder_ns=N] [latency_ns=N]
/// <fault> gray <host> slowdown=X
/// <fault> heal
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown action kinds, malformed numbers,
/// empty partition groups, or duplicate fault names.
///
/// # Examples
///
/// ```
/// use loki_spec::files::parse_action_file;
/// use loki_core::probe::FaultAction;
///
/// let probe = parse_action_file(
///     "netsplit partition host1 | host2 host3\nheal_net heal\n",
/// )?;
/// assert_eq!(probe.action_for("heal_net"), Some(&FaultAction::Heal));
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn parse_action_file(text: &str) -> Result<ActionProbe, ParseError> {
    let mut probe = ActionProbe::new();
    for (lineno, line) in content_lines(text) {
        let mut tokens = line.split_whitespace();
        let name = tokens.next().expect("non-empty");
        let kind = tokens
            .next()
            .ok_or_else(|| ParseError::at(lineno, "action line needs an action kind"))?;
        let rest: Vec<&str> = tokens.collect();
        let arity = |n: usize, usage: &str| -> Result<(), ParseError> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(ParseError::at(lineno, format!("expected `{usage}`")))
            }
        };
        let action = match kind {
            "crash" => {
                arity(0, "<fault> crash")?;
                FaultAction::CrashNode
            }
            "crash_p" => {
                arity(2, "<fault> crash_p <activation> <dormancy_ns>")?;
                FaultAction::CrashWithProbability {
                    activation: parse_f64(lineno, "activation", rest[0])?,
                    dormancy_ns: parse_u64(lineno, "dormancy_ns", rest[1])?,
                }
            }
            "hang" => {
                arity(1, "<fault> hang <duration_ns>")?;
                FaultAction::HangNode {
                    duration_ns: parse_u64(lineno, "duration_ns", rest[0])?,
                }
            }
            "drop" => {
                arity(1, "<fault> drop <count>")?;
                FaultAction::DropMessages {
                    count: parse_u64(lineno, "count", rest[0])? as u32,
                }
            }
            "corrupt_state" => {
                arity(1, "<fault> corrupt_state <target>")?;
                FaultAction::CorruptState {
                    target: rest[0].to_owned(),
                }
            }
            "custom" => {
                arity(1, "<fault> custom <name>")?;
                FaultAction::Custom(rest[0].to_owned())
            }
            "heal" => {
                arity(0, "<fault> heal")?;
                FaultAction::Heal
            }
            "partition" => {
                let mut groups: Vec<Vec<String>> = vec![Vec::new()];
                for t in &rest {
                    if *t == "|" {
                        groups.push(Vec::new());
                    } else {
                        groups.last_mut().expect("non-empty").push((*t).to_owned());
                    }
                }
                if groups.iter().any(Vec::is_empty) {
                    return Err(ParseError::at(
                        lineno,
                        "partition groups must be non-empty (`partition h1 | h2 h3`)",
                    ));
                }
                FaultAction::Partition { groups }
            }
            "link" => {
                if rest.len() < 2 {
                    return Err(ParseError::at(
                        lineno,
                        "expected `<fault> link <from> <to> [key=value…]`",
                    ));
                }
                let (mut drop_prob, mut dup_prob, mut corrupt_prob) = (0.0, 0.0, 0.0);
                let (mut reorder_ns, mut extra_latency_ns) = (0, 0);
                for t in &rest[2..] {
                    let (k, v) = t.split_once('=').ok_or_else(|| {
                        ParseError::at(lineno, format!("expected `key=value`, found `{t}`"))
                    })?;
                    match k {
                        "drop" => drop_prob = parse_f64(lineno, "drop", v)?,
                        "dup" => dup_prob = parse_f64(lineno, "dup", v)?,
                        "corrupt" => corrupt_prob = parse_f64(lineno, "corrupt", v)?,
                        "reorder_ns" => reorder_ns = parse_u64(lineno, "reorder_ns", v)?,
                        "latency_ns" => extra_latency_ns = parse_u64(lineno, "latency_ns", v)?,
                        other => {
                            return Err(ParseError::at(
                                lineno,
                                format!("unknown link parameter `{other}`"),
                            ))
                        }
                    }
                }
                FaultAction::LinkFault {
                    from: rest[0].to_owned(),
                    to: rest[1].to_owned(),
                    drop_prob,
                    dup_prob,
                    reorder_ns,
                    corrupt_prob,
                    extra_latency_ns,
                }
            }
            "gray" => {
                arity(2, "<fault> gray <host> slowdown=X")?;
                let slowdown = rest[1].strip_prefix("slowdown=").ok_or_else(|| {
                    ParseError::at(lineno, "expected `<fault> gray <host> slowdown=X`")
                })?;
                FaultAction::GrayNode {
                    host: rest[0].to_owned(),
                    slowdown: parse_f64(lineno, "slowdown", slowdown)?,
                }
            }
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("unknown action kind `{other}`"),
                ))
            }
        };
        if probe.action_for(name).is_some() {
            return Err(ParseError::at(
                lineno,
                format!("duplicate action for fault `{name}`"),
            ));
        }
        probe = probe.on(name, action);
    }
    Ok(probe)
}

/// Writes an action file (fault names in sorted order, so output is
/// deterministic and round-trips through [`parse_action_file`]).
pub fn write_action_file(probe: &ActionProbe) -> String {
    let mut entries: Vec<(&str, &FaultAction)> = probe.iter().collect();
    entries.sort_by_key(|(name, _)| *name);
    let mut out = String::new();
    for (name, action) in entries {
        let line = match action {
            FaultAction::CrashNode => format!("{name} crash"),
            FaultAction::CrashWithProbability {
                activation,
                dormancy_ns,
            } => format!("{name} crash_p {activation} {dormancy_ns}"),
            FaultAction::HangNode { duration_ns } => format!("{name} hang {duration_ns}"),
            FaultAction::DropMessages { count } => format!("{name} drop {count}"),
            FaultAction::CorruptState { target } => format!("{name} corrupt_state {target}"),
            FaultAction::Custom(target) => format!("{name} custom {target}"),
            FaultAction::Heal => format!("{name} heal"),
            FaultAction::Partition { groups } => {
                let joined: Vec<String> = groups.iter().map(|g| g.join(" ")).collect();
                format!("{name} partition {}", joined.join(" | "))
            }
            FaultAction::LinkFault {
                from,
                to,
                drop_prob,
                dup_prob,
                reorder_ns,
                corrupt_prob,
                extra_latency_ns,
            } => format!(
                "{name} link {from} {to} drop={drop_prob} dup={dup_prob} \
                 corrupt={corrupt_prob} reorder_ns={reorder_ns} latency_ns={extra_latency_ns}"
            ),
            FaultAction::GrayNode { host, slowdown } => {
                format!("{name} gray {host} slowdown={slowdown}")
            }
            // Future probe actions without a file syntax yet.
            _ => continue,
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Per-experiment resource budgets and retry policy — the campaign-file
/// syntax for the harness's survivability knobs.
///
/// Mirrors `SimHarnessConfig::{max_virtual_time, max_events}` and the
/// thread backend's bounded-retry policy. A field absent from the file
/// stays `None`/default, meaning "unbounded" / "no retry".
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetSpec {
    /// Virtual-time ceiling per experiment, in nanoseconds.
    pub max_virtual_time_ns: Option<u64>,
    /// Event-count ceiling per experiment.
    pub max_events: Option<u64>,
    /// Bounded retries for failed experiments (thread backend only).
    pub max_retries: Option<u32>,
    /// Base backoff between retries, in milliseconds.
    pub retry_backoff_ms: Option<u64>,
}

/// Parses a budget file: `<key> <value>` per line, keys
/// `max_virtual_time_ns`, `max_events`, `max_retries`, `retry_backoff_ms`.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown keys, malformed numbers, missing
/// values, or duplicate keys.
///
/// # Examples
///
/// ```
/// use loki_spec::files::parse_budget_file;
///
/// let budget = parse_budget_file("max_virtual_time_ns 2000000000\nmax_events 500000\n")?;
/// assert_eq!(budget.max_virtual_time_ns, Some(2_000_000_000));
/// assert_eq!(budget.max_events, Some(500_000));
/// assert_eq!(budget.max_retries, None);
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn parse_budget_file(text: &str) -> Result<BudgetSpec, ParseError> {
    let mut spec = BudgetSpec::default();
    for (lineno, line) in content_lines(text) {
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty");
        let value = tokens
            .next()
            .ok_or_else(|| ParseError::at(lineno, format!("budget key `{key}` needs a value")))?;
        if tokens.next().is_some() {
            return Err(ParseError::at(lineno, "unexpected extra field"));
        }
        let duplicate = |lineno: usize, key: &str| -> ParseError {
            ParseError::at(lineno, format!("duplicate budget key `{key}`"))
        };
        match key {
            "max_virtual_time_ns" => {
                if spec.max_virtual_time_ns.is_some() {
                    return Err(duplicate(lineno, key));
                }
                spec.max_virtual_time_ns = Some(parse_u64(lineno, key, value)?);
            }
            "max_events" => {
                if spec.max_events.is_some() {
                    return Err(duplicate(lineno, key));
                }
                spec.max_events = Some(parse_u64(lineno, key, value)?);
            }
            "max_retries" => {
                if spec.max_retries.is_some() {
                    return Err(duplicate(lineno, key));
                }
                spec.max_retries = Some(parse_u64(lineno, key, value)? as u32);
            }
            "retry_backoff_ms" => {
                if spec.retry_backoff_ms.is_some() {
                    return Err(duplicate(lineno, key));
                }
                spec.retry_backoff_ms = Some(parse_u64(lineno, key, value)?);
            }
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("unknown budget key `{other}`"),
                ))
            }
        }
    }
    Ok(spec)
}

/// Writes a budget file (keys in fixed order; absent fields are omitted,
/// so output round-trips through [`parse_budget_file`]).
pub fn write_budget_file(spec: &BudgetSpec) -> String {
    let mut out = String::new();
    if let Some(v) = spec.max_virtual_time_ns {
        out.push_str(&format!("max_virtual_time_ns {v}\n"));
    }
    if let Some(v) = spec.max_events {
        out.push_str(&format!("max_events {v}\n"));
    }
    if let Some(v) = spec.max_retries {
        out.push_str(&format!("max_retries {v}\n"));
    }
    if let Some(v) = spec.retry_backoff_ms {
        out.push_str(&format!("retry_backoff_ms {v}\n"));
    }
    out
}

/// The study file: per-machine pointers to its specification inputs (§5.6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyFile {
    /// The machine's nickname (`<SMNickName>`).
    pub sm_nickname: String,
    /// Path of the node file.
    pub node_file: String,
    /// Path of the state machine specification file.
    pub sm_spec_file: String,
    /// Path of the fault specification file.
    pub fault_spec_file: String,
    /// Path of the instrumented application executable.
    pub executable: String,
    /// Application arguments (a single line; may be empty).
    pub arguments: String,
}

/// Parses a study file: six fixed lines (§5.6). The arguments line may be
/// absent, in which case `arguments` is empty.
///
/// # Errors
///
/// Returns a [`ParseError`] when fewer than five content lines are present.
pub fn parse_study_file(text: &str) -> Result<StudyFile, ParseError> {
    let lines: Vec<&str> = content_lines(text).map(|(_, l)| l).collect();
    if lines.len() < 5 {
        return Err(ParseError::eof(format!(
            "study file needs at least 5 lines, found {}",
            lines.len()
        )));
    }
    Ok(StudyFile {
        sm_nickname: lines[0].to_owned(),
        node_file: lines[1].to_owned(),
        sm_spec_file: lines[2].to_owned(),
        fault_spec_file: lines[3].to_owned(),
        executable: lines[4].to_owned(),
        arguments: lines.get(5).copied().unwrap_or("").to_owned(),
    })
}

/// Writes a study file.
pub fn write_study_file(study: &StudyFile) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n",
        study.sm_nickname,
        study.node_file,
        study.sm_spec_file,
        study.fault_spec_file,
        study.executable,
        study.arguments
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_core::fault::FaultExpr;

    #[test]
    fn fault_spec_roundtrip_thesis_examples() {
        let text = "\
bfault1 (black:LEAD) always
gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once
gfault3 ((green:FOLLOW) | (green:ELECT)) once
";
        let faults = parse_fault_spec("green", text).unwrap();
        assert_eq!(faults.len(), 3);
        assert_eq!(faults[0].name, "bfault1");
        assert_eq!(faults[0].trigger, Trigger::Always);
        assert_eq!(faults[0].expr, FaultExpr::atom("black", "LEAD"));
        assert_eq!(faults[1].trigger, Trigger::Once);
        let rewritten = write_fault_spec(&faults);
        let reparsed = parse_fault_spec("green", &rewritten).unwrap();
        assert_eq!(faults, reparsed);
    }

    #[test]
    fn fault_spec_errors() {
        assert!(parse_fault_spec("m", "f1 (a:X) sometimes\n").is_err());
        assert!(parse_fault_spec("m", "f1\n").is_err());
        assert!(parse_fault_spec("m", "f1 ((a:X) once\n").is_err());
    }

    #[test]
    fn node_file_roundtrip() {
        let text = "black host1\nyellow host2\ngreen\n";
        let placements = parse_node_file(text).unwrap();
        assert_eq!(placements.len(), 3);
        assert_eq!(placements[0].host.as_deref(), Some("host1"));
        assert_eq!(placements[2].host, None);
        assert_eq!(write_node_file(&placements), text);
        assert!(parse_node_file("a b c\n").is_err());
    }

    #[test]
    fn machines_file_roundtrip() {
        let hosts = vec!["h1".to_owned(), "h2".to_owned()];
        let text = write_machines_file(&hosts);
        assert_eq!(parse_machines_file(&text), hosts);
    }

    #[test]
    fn daemon_startup_roundtrip() {
        let text = "host1 9000\nhost2 9001\n";
        let eps = parse_daemon_startup(text).unwrap();
        assert_eq!(
            eps[1],
            DaemonEndpoint {
                host: "host2".into(),
                port: 9001
            }
        );
        assert_eq!(write_daemon_startup(&eps), text);
        assert!(parse_daemon_startup("host1\n").is_err());
        assert!(parse_daemon_startup("host1 notaport\n").is_err());
    }

    #[test]
    fn daemon_contact_roundtrip() {
        let text = "host1 12 34\n";
        let cs = parse_daemon_contact(text).unwrap();
        assert_eq!(cs[0].shm_id, 12);
        assert_eq!(cs[0].sem_id, 34);
        assert_eq!(write_daemon_contact(&cs), text);
        assert!(parse_daemon_contact("host1 12\n").is_err());
        assert!(parse_daemon_contact("host1 x y\n").is_err());
    }

    #[test]
    fn action_file_roundtrip_all_kinds() {
        let text = "\
# probe table
kill crash
maybe crash_p 0.5 1000000
stall hang 2000000
mute drop 3
flip corrupt_state counter
odd custom special
netsplit partition host1 | host2 host3
lossy link host1 host2 drop=0.3 dup=0.05 corrupt=0.01 reorder_ns=250000 latency_ns=50000
slowpoke gray host3 slowdown=8
heal_net heal
";
        let probe = parse_action_file(text).unwrap();
        assert_eq!(probe.action_for("kill"), Some(&FaultAction::CrashNode));
        assert_eq!(
            probe.action_for("netsplit"),
            Some(&FaultAction::Partition {
                groups: vec![
                    vec!["host1".to_owned()],
                    vec!["host2".to_owned(), "host3".to_owned()],
                ],
            })
        );
        assert_eq!(
            probe.action_for("lossy"),
            Some(&FaultAction::LinkFault {
                from: "host1".into(),
                to: "host2".into(),
                drop_prob: 0.3,
                dup_prob: 0.05,
                reorder_ns: 250_000,
                corrupt_prob: 0.01,
                extra_latency_ns: 50_000,
            })
        );
        assert_eq!(
            probe.action_for("slowpoke"),
            Some(&FaultAction::GrayNode {
                host: "host3".into(),
                slowdown: 8.0,
            })
        );
        assert_eq!(probe.action_for("heal_net"), Some(&FaultAction::Heal));
        // Writer emits sorted, parseable lines.
        let rewritten = write_action_file(&probe);
        let reparsed = parse_action_file(&rewritten).unwrap();
        for (name, action) in probe.iter() {
            assert_eq!(reparsed.action_for(name), Some(action), "{name}");
        }
    }

    #[test]
    fn action_file_errors() {
        assert!(parse_action_file("f\n").is_err()); // no kind
        assert!(parse_action_file("f explode\n").is_err()); // unknown kind
        assert!(parse_action_file("f crash extra\n").is_err());
        assert!(parse_action_file("f crash_p x 0\n").is_err());
        assert!(parse_action_file("f partition h1 |\n").is_err()); // empty group
        assert!(parse_action_file("f link h1\n").is_err()); // missing `to`
        assert!(parse_action_file("f link h1 h2 warp=1\n").is_err());
        assert!(parse_action_file("f link h1 h2 drop\n").is_err()); // no `=`
        assert!(parse_action_file("f gray h1 8\n").is_err()); // no slowdown=
        assert!(parse_action_file("f crash\nf heal\n").is_err()); // duplicate
    }

    #[test]
    fn budget_file_roundtrip() {
        let text = "\
# per-experiment budgets
max_virtual_time_ns 2000000000
max_events 500000
max_retries 2
retry_backoff_ms 50
";
        let budget = parse_budget_file(text).unwrap();
        assert_eq!(budget.max_virtual_time_ns, Some(2_000_000_000));
        assert_eq!(budget.max_events, Some(500_000));
        assert_eq!(budget.max_retries, Some(2));
        assert_eq!(budget.retry_backoff_ms, Some(50));
        let rewritten = write_budget_file(&budget);
        assert_eq!(parse_budget_file(&rewritten).unwrap(), budget);

        // Partial files leave the other knobs unbounded.
        let partial = parse_budget_file("max_events 1000\n").unwrap();
        assert_eq!(partial.max_events, Some(1000));
        assert_eq!(partial.max_virtual_time_ns, None);
        assert_eq!(write_budget_file(&BudgetSpec::default()), "");
    }

    #[test]
    fn budget_file_errors() {
        assert!(parse_budget_file("max_events\n").is_err()); // no value
        assert!(parse_budget_file("max_events 1 2\n").is_err()); // extra field
        assert!(parse_budget_file("max_events many\n").is_err()); // not a number
        assert!(parse_budget_file("wall_clock_ns 5\n").is_err()); // unknown key
        assert!(parse_budget_file("max_events 1\nmax_events 2\n").is_err()); // duplicate
    }

    #[test]
    fn study_file_roundtrip() {
        let sf = StudyFile {
            sm_nickname: "black".into(),
            node_file: "nodes.txt".into(),
            sm_spec_file: "black.sm".into(),
            fault_spec_file: "black.flt".into(),
            executable: "/bin/election".into(),
            arguments: "--replicas 3".into(),
        };
        let text = write_study_file(&sf);
        assert_eq!(parse_study_file(&text).unwrap(), sf);
        assert!(parse_study_file("only\nthree\nlines\n").is_err());
    }
}
