//! # loki-spec
//!
//! Parsers and writers for every textual format of the Loki fault injector
//! (thesis §3.5, §5.6):
//!
//! * [`sm_spec`] — state machine specification files
//!   (`global_state_list` / `event_list` / `state` blocks).
//! * [`expr`] — Boolean fault expressions, e.g.
//!   `((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))`.
//! * [`files`] — fault specifications, node files, machines files, daemon
//!   startup/contact files, study files.
//! * [`timeline_file`] — the index-compressed local timeline format with
//!   Hi/Lo 32-bit timestamps.
//! * [`timestamps_file`] — synchronization timestamp dumps for the off-line
//!   clock synchronization.
//! * [`campaign_loader`] — assembling whole studies from their
//!   specification files (the §5.6 workflow).
//!
//! Every writer round-trips through its parser; property tests in
//! `tests/prop_roundtrip.rs` verify this for generated inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign_loader;
pub mod error;
pub mod expr;
pub mod files;
pub mod sm_spec;
pub mod timeline_file;
pub mod timestamps_file;

pub use campaign_loader::{
    load_budget_dir, load_study, load_study_dir, load_study_dir_with_actions, write_budget_dir,
    write_study_dir, write_study_dir_with_actions, MachineSources,
};
pub use error::ParseError;
pub use expr::parse_expr;
pub use files::{
    parse_action_file, parse_budget_file, parse_daemon_contact, parse_daemon_startup,
    parse_fault_spec, parse_machines_file, parse_node_file, parse_study_file, write_action_file,
    write_budget_file, write_daemon_contact, write_daemon_startup, write_fault_spec,
    write_machines_file, write_node_file, write_study_file, BudgetSpec, DaemonContact,
    DaemonEndpoint, StudyFile,
};
