//! Parser and writer for the state machine specification format (§3.5.3).
//!
//! ```text
//! global_state_list
//! <list_of_states>
//! end_global_state_list
//! event_list
//! <list_of_events>
//! end_event_list
//!
//! state <state_1> [notify <nickname_1>, ... <nickname_j>]
//! <event_1> <next_state_1>
//! ...
//! ```
//!
//! Comments start with `#` and blank lines are ignored (an extension over
//! the thesis, which has no comment syntax).

use crate::error::ParseError;
use loki_core::spec::{StateDef, StateMachineSpec, Transition};

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Section {
    ExpectGlobalList,
    InStates,
    ExpectEventList,
    InEvents,
    Body,
}

/// Parses a state machine specification. The machine's nickname is not part
/// of the file (it comes from the study file), so it is passed in.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for malformed input.
///
/// # Examples
///
/// ```
/// use loki_spec::sm_spec::parse;
///
/// let text = "\
/// global_state_list
/// BEGIN
/// INIT
/// ELECT
/// end_global_state_list
/// event_list
/// START
/// INIT_DONE
/// end_event_list
///
/// state INIT notify green yellow
/// INIT_DONE ELECT
/// ";
/// let spec = parse("black", text)?;
/// assert_eq!(spec.global_states, vec!["BEGIN", "INIT", "ELECT"]);
/// assert_eq!(spec.states[0].notify, vec!["green", "yellow"]);
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn parse(name: &str, text: &str) -> Result<StateMachineSpec, ParseError> {
    let mut section = Section::ExpectGlobalList;
    let mut spec = StateMachineSpec {
        name: name.to_owned(),
        ..Default::default()
    };
    let mut current: Option<StateDef> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match section {
            Section::ExpectGlobalList => {
                if line == "global_state_list" {
                    section = Section::InStates;
                } else {
                    return Err(ParseError::at(
                        lineno,
                        format!("expected `global_state_list`, found `{line}`"),
                    ));
                }
            }
            Section::InStates => {
                if line == "end_global_state_list" {
                    section = Section::ExpectEventList;
                } else {
                    expect_single_token(line, lineno, "state name")?;
                    spec.global_states.push(line.to_owned());
                }
            }
            Section::ExpectEventList => {
                if line == "event_list" {
                    section = Section::InEvents;
                } else {
                    return Err(ParseError::at(
                        lineno,
                        format!("expected `event_list`, found `{line}`"),
                    ));
                }
            }
            Section::InEvents => {
                if line == "end_event_list" {
                    section = Section::Body;
                } else {
                    expect_single_token(line, lineno, "event name")?;
                    spec.events.push(line.to_owned());
                }
            }
            Section::Body => {
                let mut tokens = line.split_whitespace();
                let first = tokens.next().expect("non-empty line");
                if first == "state" {
                    if let Some(done) = current.take() {
                        spec.states.push(done);
                    }
                    let state = tokens
                        .next()
                        .ok_or_else(|| ParseError::at(lineno, "`state` requires a state name"))?;
                    let mut def = StateDef {
                        state: state.to_owned(),
                        ..Default::default()
                    };
                    match tokens.next() {
                        None => {}
                        Some("notify") => {
                            for t in tokens {
                                for nick in t.split(',').filter(|s| !s.is_empty()) {
                                    def.notify.push(nick.to_owned());
                                }
                            }
                        }
                        Some(other) => {
                            return Err(ParseError::at(
                                lineno,
                                format!("expected `notify` after state name, found `{other}`"),
                            ))
                        }
                    }
                    current = Some(def);
                } else {
                    let def = current.as_mut().ok_or_else(|| {
                        ParseError::at(lineno, "transition line outside of a `state` block")
                    })?;
                    let next_state = tokens.next().ok_or_else(|| {
                        ParseError::at(
                            lineno,
                            format!("transition for event `{first}` is missing its next state"),
                        )
                    })?;
                    if let Some(extra) = tokens.next() {
                        return Err(ParseError::at(
                            lineno,
                            format!("unexpected token `{extra}` after transition"),
                        ));
                    }
                    def.transitions.push(Transition {
                        event: first.to_owned(),
                        next_state: next_state.to_owned(),
                    });
                }
            }
        }
    }
    if let Some(done) = current.take() {
        spec.states.push(done);
    }
    match section {
        Section::Body => Ok(spec),
        Section::ExpectGlobalList => Err(ParseError::eof("missing `global_state_list` section")),
        Section::InStates => Err(ParseError::eof("missing `end_global_state_list`")),
        Section::ExpectEventList => Err(ParseError::eof("missing `event_list` section")),
        Section::InEvents => Err(ParseError::eof("missing `end_event_list`")),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn expect_single_token(s: &str, lineno: usize, what: &str) -> Result<(), ParseError> {
    if s.split_whitespace().count() != 1 {
        return Err(ParseError::at(
            lineno,
            format!("expected a single {what}: `{s}`"),
        ));
    }
    Ok(())
}

/// Writes a specification back into the thesis's textual format.
///
/// # Examples
///
/// ```
/// use loki_core::spec::StateMachineSpec;
/// use loki_spec::sm_spec::{parse, write};
///
/// let spec = StateMachineSpec::builder("black")
///     .states(&["BEGIN", "RUN"])
///     .events(&["GO"])
///     .state("BEGIN", &[], &[("GO", "RUN")])
///     .state("RUN", &["green"], &[])
///     .build();
/// let text = write(&spec);
/// assert_eq!(parse("black", &text)?, spec);
/// # Ok::<(), loki_spec::error::ParseError>(())
/// ```
pub fn write(spec: &StateMachineSpec) -> String {
    let mut out = String::new();
    out.push_str("global_state_list\n");
    for s in &spec.global_states {
        out.push_str(s);
        out.push('\n');
    }
    out.push_str("end_global_state_list\n");
    out.push_str("event_list\n");
    for e in &spec.events {
        out.push_str(e);
        out.push('\n');
    }
    out.push_str("end_event_list\n");
    for def in &spec.states {
        out.push('\n');
        out.push_str("state ");
        out.push_str(&def.state);
        if !def.notify.is_empty() {
            out.push_str(" notify ");
            out.push_str(&def.notify.join(" "));
        }
        out.push('\n');
        for t in &def.transitions {
            out.push_str(&t.event);
            out.push(' ');
            out.push_str(&t.next_state);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The thesis's `black` state machine specification, §5.3, verbatim.
    const BLACK: &str = "\
global_state_list
BEGIN
INIT
RESTART_SM
ELECT
FOLLOW
LEAD
CRASH
EXIT
end_global_state_list
event_list
START
INIT_DONE
RESTART
RESTART_DONE
LEADER
FOLLOWER
LEADER_CRASH
CRASH
ERROR
end_event_list

state INIT notify green yellow
INIT_DONE ELECT
ERROR EXIT

state RESTART_SM notify green yellow
RESTART_DONE FOLLOW
ERROR EXIT

state ELECT notify
FOLLOWER FOLLOW
LEADER LEAD
CRASH CRASH
ERROR EXIT

state LEAD notify
CRASH CRASH
ERROR EXIT

state FOLLOW notify
LEADER_CRASH ELECT
CRASH CRASH
ERROR EXIT

state CRASH notify green yellow
state EXIT notify
";

    #[test]
    fn parses_thesis_black_spec() {
        let spec = parse("black", BLACK).unwrap();
        assert_eq!(spec.name, "black");
        assert_eq!(spec.global_states.len(), 8);
        assert_eq!(spec.events.len(), 9);
        assert_eq!(spec.states.len(), 7);
        let elect = spec.state_def("ELECT").unwrap();
        assert!(elect.notify.is_empty());
        assert_eq!(elect.transitions.len(), 4);
        let crash = spec.state_def("CRASH").unwrap();
        assert_eq!(crash.notify, vec!["green", "yellow"]);
        assert!(crash.transitions.is_empty());
    }

    #[test]
    fn write_parse_roundtrip_thesis_spec() {
        let spec = parse("black", BLACK).unwrap();
        let text = write(&spec);
        let reparsed = parse("black", &text).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn comma_separated_notify_accepted() {
        let text = "\
global_state_list
A
end_global_state_list
event_list
end_event_list
state A notify x, y, z
";
        let spec = parse("m", text).unwrap();
        assert_eq!(spec.states[0].notify, vec!["x", "y", "z"]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# a comment
global_state_list
A  # trailing comment
end_global_state_list

event_list
end_event_list
state A
";
        let spec = parse("m", text).unwrap();
        assert_eq!(spec.global_states, vec!["A"]);
    }

    #[test]
    fn error_cases() {
        assert!(parse("m", "").is_err());
        assert!(parse("m", "global_state_list\nA\n").is_err()); // no end
        assert!(parse("m", "bogus\n").is_err());
        let no_events = "global_state_list\nA\nend_global_state_list\n";
        assert!(parse("m", no_events).is_err());
        let orphan_transition = "\
global_state_list
A
end_global_state_list
event_list
E
end_event_list
E A
";
        assert!(parse("m", orphan_transition).is_err());
        let bad_transition = "\
global_state_list
A
end_global_state_list
event_list
E
end_event_list
state A
E
";
        assert!(parse("m", bad_transition).is_err());
    }
}
