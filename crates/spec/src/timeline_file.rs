//! The on-disk local timeline format (§3.5.6).
//!
//! The file carries index tables for state machines, states, events, and
//! faults, followed by the records themselves with names replaced by
//! indices ("this makes the local timeline compact and decreases intrusion
//! during recording"). Times are stored as the upper and lower 32-bit halves
//! of the 64-bit nanosecond reading, exactly as in the thesis:
//!
//! ```text
//! <mySMnickName>
//! host <initial host>                       (extension: first stint's host)
//! state_machine_list
//! <index> <SMNickName>
//! end_state_machine_list
//! global_state_list
//! <index> <stateName>
//! end_global_state_list
//! event_list
//! <index> <eventName>
//! end_event_list
//! fault_list
//! <index> <faultName> <faultExpr> <once|always>
//! end_fault_list
//! local_timeline
//! 0 <EventIndex> <NewStateIndex> <Time.Hi> <Time.Lo>     STATE_CHANGE
//! 1 <FaultIndex> <Time.Hi> <Time.Lo>                     FAULT_INJECTION
//! 2 <host> <Time.Hi> <Time.Lo>                           RESTART (extension)
//! 3 <Time.Hi> <Time.Lo> <message...>                     USER_MESSAGE (extension)
//! end_local_timeline
//! ```
//!
//! `STATE_CHANGE` and `FAULT_INJECTION` are the thesis's numerical constants
//! 0 and 1. Record kinds 2 and 3 are extensions: the thesis stores restart
//! host information "in the local timeline" without specifying an encoding,
//! and permits arbitrary user messages.

use crate::error::ParseError;
use loki_core::ids::SymbolTable;
use loki_core::recorder::{HostStint, LocalTimeline, RecordKind, TimelineRecord};
use loki_core::study::Study;
use loki_core::time::LocalNanos;
use std::collections::HashMap;

/// Writes `timeline` in the on-disk format, using `study` for names and
/// `symbols` (the study-run symbol table) to resolve host ids — the file
/// stays name-based and therefore portable across table orderings.
///
/// The fault table lists the faults owned by the timeline's machine, as in
/// the thesis; the state machine, state, and event tables are study-wide.
pub fn write(study: &Study, symbols: &SymbolTable, timeline: &LocalTimeline) -> String {
    let mut out = String::new();
    out.push_str(study.sms.name(timeline.sm));
    out.push('\n');
    out.push_str(&format!(
        "host {}\n",
        symbols.host_name(timeline.stints[0].host)
    ));

    out.push_str("state_machine_list\n");
    for (id, name) in study.sms.iter() {
        out.push_str(&format!("{} {}\n", id.raw(), name));
    }
    out.push_str("end_state_machine_list\n");

    out.push_str("global_state_list\n");
    for (id, name) in study.states.iter() {
        out.push_str(&format!("{} {}\n", id.raw(), name));
    }
    out.push_str("end_global_state_list\n");

    out.push_str("event_list\n");
    for (id, name) in study.events.iter() {
        out.push_str(&format!("{} {}\n", id.raw(), name));
    }
    out.push_str("end_event_list\n");

    out.push_str("fault_list\n");
    for fault in &study.faults {
        if fault.owner == timeline.sm {
            let def = study
                .def
                .faults
                .iter()
                .find(|f| f.name == fault.name)
                .expect("compiled fault has a definition");
            out.push_str(&format!(
                "{} {} {} {}\n",
                fault.id.raw(),
                fault.name,
                def.expr,
                fault.trigger
            ));
        }
    }
    out.push_str("end_fault_list\n");

    out.push_str("local_timeline\n");
    for record in &timeline.records {
        let (hi, lo) = record.time.split_hi_lo();
        match &record.kind {
            RecordKind::StateChange { event, new_state } => {
                out.push_str(&format!(
                    "0 {} {} {} {}\n",
                    event.raw(),
                    new_state.raw(),
                    hi,
                    lo
                ));
            }
            RecordKind::FaultInjection { fault } => {
                out.push_str(&format!("1 {} {} {}\n", fault.raw(), hi, lo));
            }
            RecordKind::Restart { host } => {
                out.push_str(&format!("2 {} {} {}\n", symbols.host_name(*host), hi, lo));
            }
            RecordKind::UserMessage(msg) => {
                out.push_str(&format!("3 {} {} {}\n", hi, lo, msg));
            }
        }
    }
    out.push_str("end_local_timeline\n");
    out
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mode {
    Header,
    SmList,
    ExpectStates,
    StateList,
    ExpectEvents,
    EventList,
    ExpectFaults,
    FaultList,
    ExpectTimeline,
    Timeline,
    Done,
}

/// Parses an on-disk timeline, resolving names through `study` and
/// interning host names into `symbols` (unknown hosts are added — a loaded
/// timeline may mention hosts the current configuration does not).
///
/// Indices in the file are mapped through the file's own tables to names
/// and then to `study` ids, so files written against a differently-ordered
/// table still load correctly.
///
/// # Errors
///
/// Returns a [`ParseError`] for structural problems or names unknown to
/// `study`.
pub fn parse(
    study: &Study,
    symbols: &mut SymbolTable,
    text: &str,
) -> Result<LocalTimeline, ParseError> {
    let mut sm_name: Option<String> = None;
    let mut initial_host: Option<String> = None;
    let mut state_table: HashMap<u32, String> = HashMap::new();
    let mut event_table: HashMap<u32, String> = HashMap::new();
    let mut fault_table: HashMap<u32, String> = HashMap::new();
    let mut records: Vec<TimelineRecord> = Vec::new();
    let mut restart_stints: Vec<(loki_core::ids::HostId, usize)> = Vec::new();
    let mut mode = Mode::Header;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match mode {
            Mode::Header => {
                if sm_name.is_none() {
                    sm_name = Some(line.to_owned());
                } else if let Some(host) = line.strip_prefix("host ") {
                    initial_host = Some(host.trim().to_owned());
                } else if line == "state_machine_list" {
                    mode = Mode::SmList;
                } else {
                    return Err(ParseError::at(
                        lineno,
                        format!("expected `host` or `state_machine_list`, found `{line}`"),
                    ));
                }
            }
            Mode::SmList => {
                if line == "end_state_machine_list" {
                    mode = Mode::ExpectStates;
                } else {
                    // The machine list is informational; names are validated
                    // against the study when referenced.
                    index_name(line, lineno)?;
                }
            }
            Mode::ExpectStates => {
                expect_keyword(line, "global_state_list", lineno)?;
                mode = Mode::StateList;
            }
            Mode::StateList => {
                if line == "end_global_state_list" {
                    mode = Mode::ExpectEvents;
                } else {
                    let (i, name) = index_name(line, lineno)?;
                    state_table.insert(i, name);
                }
            }
            Mode::ExpectEvents => {
                expect_keyword(line, "event_list", lineno)?;
                mode = Mode::EventList;
            }
            Mode::EventList => {
                if line == "end_event_list" {
                    mode = Mode::ExpectFaults;
                } else {
                    let (i, name) = index_name(line, lineno)?;
                    event_table.insert(i, name);
                }
            }
            Mode::ExpectFaults => {
                expect_keyword(line, "fault_list", lineno)?;
                mode = Mode::FaultList;
            }
            Mode::FaultList => {
                if line == "end_fault_list" {
                    mode = Mode::ExpectTimeline;
                } else {
                    // `<index> <name> <expr...> <trigger>` — only index and
                    // name are needed to decode records.
                    let mut tokens = line.split_whitespace();
                    let idx_str = tokens.next().expect("non-empty");
                    let i: u32 = idx_str.parse().map_err(|_| {
                        ParseError::at(lineno, format!("invalid fault index `{idx_str}`"))
                    })?;
                    let name = tokens
                        .next()
                        .ok_or_else(|| ParseError::at(lineno, "fault entry needs a name"))?;
                    fault_table.insert(i, name.to_owned());
                }
            }
            Mode::ExpectTimeline => {
                expect_keyword(line, "local_timeline", lineno)?;
                mode = Mode::Timeline;
            }
            Mode::Timeline => {
                if line == "end_local_timeline" {
                    mode = Mode::Done;
                    continue;
                }
                let mut tokens = line.split_whitespace();
                let tag = tokens.next().expect("non-empty");
                match tag {
                    "0" => {
                        let ev = parse_u32(tokens.next(), lineno, "event index")?;
                        let st = parse_u32(tokens.next(), lineno, "state index")?;
                        let time = parse_time(tokens.next(), tokens.next(), lineno)?;
                        let event_name = event_table.get(&ev).ok_or_else(|| {
                            ParseError::at(lineno, format!("event index {ev} not in event_list"))
                        })?;
                        let state_name = state_table.get(&st).ok_or_else(|| {
                            ParseError::at(
                                lineno,
                                format!("state index {st} not in global_state_list"),
                            )
                        })?;
                        let event = study.events.lookup(event_name).ok_or_else(|| {
                            ParseError::at(lineno, format!("unknown event `{event_name}`"))
                        })?;
                        let new_state = study.states.lookup(state_name).ok_or_else(|| {
                            ParseError::at(lineno, format!("unknown state `{state_name}`"))
                        })?;
                        records.push(TimelineRecord {
                            time,
                            kind: RecordKind::StateChange { event, new_state },
                        });
                    }
                    "1" => {
                        let fi = parse_u32(tokens.next(), lineno, "fault index")?;
                        let time = parse_time(tokens.next(), tokens.next(), lineno)?;
                        let fault_name = fault_table.get(&fi).ok_or_else(|| {
                            ParseError::at(lineno, format!("fault index {fi} not in fault_list"))
                        })?;
                        let fault = study.fault_names.lookup(fault_name).ok_or_else(|| {
                            ParseError::at(lineno, format!("unknown fault `{fault_name}`"))
                        })?;
                        records.push(TimelineRecord {
                            time,
                            kind: RecordKind::FaultInjection { fault },
                        });
                    }
                    "2" => {
                        let host_name = tokens
                            .next()
                            .ok_or_else(|| ParseError::at(lineno, "restart record needs a host"))?;
                        let host = symbols.intern_host(host_name);
                        let time = parse_time(tokens.next(), tokens.next(), lineno)?;
                        restart_stints.push((host, records.len()));
                        records.push(TimelineRecord {
                            time,
                            kind: RecordKind::Restart { host },
                        });
                    }
                    "3" => {
                        let time = parse_time(tokens.next(), tokens.next(), lineno)?;
                        let rest: Vec<&str> = tokens.collect();
                        records.push(TimelineRecord {
                            time,
                            kind: RecordKind::UserMessage(rest.join(" ")),
                        });
                    }
                    other => {
                        return Err(ParseError::at(
                            lineno,
                            format!("unknown timeline record tag `{other}`"),
                        ))
                    }
                }
            }
            Mode::Done => {
                return Err(ParseError::at(
                    lineno,
                    format!("unexpected content after `end_local_timeline`: `{line}`"),
                ))
            }
        }
    }

    if mode != Mode::Done {
        return Err(ParseError::eof("truncated timeline file"));
    }
    let sm_name = sm_name.ok_or_else(|| ParseError::eof("missing state machine nickname"))?;
    let sm = study
        .sms
        .lookup(&sm_name)
        .ok_or_else(|| ParseError::eof(format!("unknown state machine `{sm_name}`")))?;

    let initial_host = symbols.intern_host(initial_host.as_deref().unwrap_or("unknown"));
    let mut stints = vec![HostStint {
        host: initial_host,
        first_record: 0,
    }];
    for (host, first_record) in restart_stints {
        stints.push(HostStint { host, first_record });
    }

    Ok(LocalTimeline {
        sm,
        records,
        stints,
    })
}

fn expect_keyword(line: &str, keyword: &str, lineno: usize) -> Result<(), ParseError> {
    if line == keyword {
        Ok(())
    } else {
        Err(ParseError::at(
            lineno,
            format!("expected `{keyword}`, found `{line}`"),
        ))
    }
}

fn index_name(line: &str, lineno: usize) -> Result<(u32, String), ParseError> {
    let mut tokens = line.split_whitespace();
    let idx_str = tokens.next().expect("non-empty");
    let idx: u32 = idx_str
        .parse()
        .map_err(|_| ParseError::at(lineno, format!("invalid index `{idx_str}`")))?;
    let name = tokens
        .next()
        .ok_or_else(|| ParseError::at(lineno, "expected `<index> <name>`"))?
        .to_owned();
    if tokens.next().is_some() {
        return Err(ParseError::at(lineno, "unexpected extra field"));
    }
    Ok((idx, name))
}

fn parse_u32(token: Option<&str>, lineno: usize, what: &str) -> Result<u32, ParseError> {
    let t = token.ok_or_else(|| ParseError::at(lineno, format!("missing {what}")))?;
    t.parse()
        .map_err(|_| ParseError::at(lineno, format!("invalid {what} `{t}`")))
}

fn parse_time(hi: Option<&str>, lo: Option<&str>, lineno: usize) -> Result<LocalNanos, ParseError> {
    let hi = parse_u32(hi, lineno, "time high word")?;
    let lo = parse_u32(lo, lineno, "time low word")?;
    Ok(LocalNanos::from_hi_lo(hi, lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_core::fault::{FaultExpr, Trigger};
    use loki_core::recorder::Recorder;
    use loki_core::spec::{StateMachineSpec, StudyDef};

    fn study() -> Study {
        let def = StudyDef::new("s")
            .machine(
                StateMachineSpec::builder("black")
                    .states(&["INIT", "ELECT", "LEAD"])
                    .events(&["INIT_DONE", "LEADER"])
                    .state("INIT", &["green"], &[("INIT_DONE", "ELECT")])
                    .state("ELECT", &[], &[("LEADER", "LEAD")])
                    .build(),
            )
            .machine(
                StateMachineSpec::builder("green")
                    .states(&["INIT", "ELECT", "LEAD"])
                    .events(&["INIT_DONE"])
                    .state("INIT", &[], &[("INIT_DONE", "ELECT")])
                    .build(),
            )
            .fault(
                "black",
                "bfault1",
                FaultExpr::atom("black", "LEAD"),
                Trigger::Always,
            );
        Study::compile(&def).unwrap()
    }

    fn symbols() -> SymbolTable {
        SymbolTable::for_hosts(["host1", "host2"])
    }

    fn sample_timeline(study: &Study, symbols: &SymbolTable) -> LocalTimeline {
        let black = study.sm_id("black").unwrap();
        let init_done = study.events.lookup("INIT_DONE").unwrap();
        let leader = study.events.lookup("LEADER").unwrap();
        let elect = study.states.lookup("ELECT").unwrap();
        let lead = study.states.lookup("LEAD").unwrap();
        let bfault1 = study.fault_names.lookup("bfault1").unwrap();
        let host1 = symbols.lookup_host("host1").unwrap();
        let host2 = symbols.lookup_host("host2").unwrap();

        let mut rec = Recorder::new(black, host1);
        rec.record_state_change(LocalNanos::from_millis(5), init_done, elect);
        rec.record_state_change(LocalNanos::from_millis(9), leader, lead);
        rec.record_injection(LocalNanos::from_millis(10), bfault1);
        rec.record_user_message(LocalNanos::from_millis(11), "hello world");
        let mut rec = Recorder::resume(rec.finish(), LocalNanos::from_millis(1), host2);
        rec.record_state_change(LocalNanos::from_millis(2), init_done, elect);
        rec.finish()
    }

    #[test]
    fn write_parse_roundtrip() {
        let study = study();
        let mut symbols = symbols();
        let timeline = sample_timeline(&study, &symbols);
        let text = write(&study, &symbols, &timeline);
        let parsed = parse(&study, &mut symbols, &text).unwrap();
        assert_eq!(parsed, timeline);
    }

    #[test]
    fn parse_interns_hosts_unknown_to_the_table() {
        // A file written against one table loads into an empty table: the
        // parser interns the hosts it encounters and the stints stay
        // consistent with the restart records.
        let study = study();
        let symbols = symbols();
        let timeline = sample_timeline(&study, &symbols);
        let text = write(&study, &symbols, &timeline);
        let mut fresh = SymbolTable::new();
        let parsed = parse(&study, &mut fresh, &text).unwrap();
        assert_eq!(fresh.num_hosts(), 2);
        assert_eq!(fresh.host_name(parsed.stints[0].host), "host1");
        assert_eq!(fresh.host_name(parsed.stints[1].host), "host2");
    }

    #[test]
    fn written_file_has_thesis_structure() {
        let study = study();
        let symbols = symbols();
        let timeline = sample_timeline(&study, &symbols);
        let text = write(&study, &symbols, &timeline);
        for section in [
            "state_machine_list",
            "end_state_machine_list",
            "global_state_list",
            "end_global_state_list",
            "event_list",
            "end_event_list",
            "fault_list",
            "end_fault_list",
            "local_timeline",
            "end_local_timeline",
        ] {
            assert!(text.contains(section), "missing `{section}`:\n{text}");
        }
        // Fault table names only the machine's own faults, with expression
        // and trigger.
        assert!(text.contains("bfault1 (black:LEAD) always"));
        // Times appear as 32-bit halves: 10ms = 10_000_000 ns -> hi 0.
        assert!(text
            .lines()
            .any(|l| l.starts_with("1 ") && l.contains(" 0 ")));
    }

    #[test]
    fn hi_lo_split_survives_large_times() {
        let study = study();
        let mut symbols = symbols();
        let black = study.sm_id("black").unwrap();
        let init_done = study.events.lookup("INIT_DONE").unwrap();
        let elect = study.states.lookup("ELECT").unwrap();
        let big = LocalNanos(u32::MAX as u64 * 7 + 123); // > 2^32 ns
        let mut rec = Recorder::new(black, symbols.lookup_host("host1").unwrap());
        rec.record_state_change(big, init_done, elect);
        let timeline = rec.finish();
        let text = write(&study, &symbols, &timeline);
        let parsed = parse(&study, &mut symbols, &text).unwrap();
        assert_eq!(parsed.records[0].time, big);
    }

    #[test]
    fn parse_rejects_garbage() {
        let study = study();
        let mut symbols = symbols();
        assert!(parse(&study, &mut symbols, "").is_err());
        assert!(parse(&study, &mut symbols, "black\nstate_machine_list\n").is_err());
        let timeline = sample_timeline(&study, &symbols);
        let good = write(&study, &symbols, &timeline);
        let tampered = good.replace("1 0 ", "9 0 ");
        assert!(parse(&study, &mut symbols, &tampered).is_err());
    }

    #[test]
    fn parse_rejects_unknown_machine() {
        let study = study();
        let mut symbols = symbols();
        let timeline = sample_timeline(&study, &symbols);
        let text = write(&study, &symbols, &timeline).replace("black\nhost", "white\nhost");
        assert!(parse(&study, &mut symbols, &text).is_err());
    }

    #[test]
    fn restart_records_rebuild_stints() {
        let study = study();
        let mut symbols = symbols();
        let timeline = sample_timeline(&study, &symbols);
        let text = write(&study, &symbols, &timeline);
        let parsed = parse(&study, &mut symbols, &text).unwrap();
        assert_eq!(parsed.stints.len(), 2);
        assert_eq!(symbols.host_name(parsed.stints[0].host), "host1");
        assert_eq!(symbols.host_name(parsed.stints[1].host), "host2");
        assert_eq!(parsed.stints[1].first_record, 4);
    }
}
