//! The timestamps file produced by the sync mini-phases.
//!
//! The thesis's `getstamps` tool stores "all the timestamps together in a
//! single timestamps file" (§5.6) without specifying its layout; we define
//! one line per synchronization message:
//!
//! ```text
//! reference <HostName>
//! <HostName> <0|1> <send_ns> <recv_ns>
//! ```
//!
//! where the second field is `1` when the reference host sent the message
//! and `0` when the named host sent it, and both timestamps are local-clock
//! nanosecond readings of the respective sender/receiver.

use crate::error::ParseError;
use loki_core::campaign::{HostSync, SyncSample};
use loki_core::ids::{HostId, SymbolTable};
use loki_core::time::LocalNanos;

/// Writes a timestamps file, resolving host ids through `symbols` (the
/// file stays name-based and therefore portable).
pub fn write(symbols: &SymbolTable, reference: HostId, host_syncs: &[HostSync]) -> String {
    let mut out = format!("reference {}\n", symbols.host_name(reference));
    for hs in host_syncs {
        for s in &hs.samples {
            out.push_str(&format!(
                "{} {} {} {}\n",
                symbols.host_name(hs.host),
                if s.from_reference { 1 } else { 0 },
                s.send.as_nanos(),
                s.recv.as_nanos()
            ));
        }
    }
    out
}

/// Parses a timestamps file, returning `(reference host, per-host samples)`
/// with every host name interned into `symbols`.
///
/// # Errors
///
/// Returns a [`ParseError`] for a missing `reference` header or malformed
/// sample lines.
pub fn parse(symbols: &mut SymbolTable, text: &str) -> Result<(HostId, Vec<HostSync>), ParseError> {
    let mut reference: Option<HostId> = None;
    let mut syncs: Vec<HostSync> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(host) = line.strip_prefix("reference ") {
            if reference.is_some() {
                return Err(ParseError::at(lineno, "duplicate `reference` line"));
            }
            reference = Some(symbols.intern_host(host.trim()));
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() != 4 {
            return Err(ParseError::at(
                lineno,
                "expected `<host> <0|1> <send_ns> <recv_ns>`",
            ));
        }
        let from_reference = match tokens[1] {
            "1" => true,
            "0" => false,
            other => {
                return Err(ParseError::at(
                    lineno,
                    format!("direction must be 0 or 1, found `{other}`"),
                ))
            }
        };
        let send: u64 = tokens[2]
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("invalid send time `{}`", tokens[2])))?;
        let recv: u64 = tokens[3]
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("invalid recv time `{}`", tokens[3])))?;
        let sample = SyncSample {
            from_reference,
            send: LocalNanos(send),
            recv: LocalNanos(recv),
        };
        let host = symbols.intern_host(tokens[0]);
        match syncs.iter_mut().find(|hs| hs.host == host) {
            Some(hs) => hs.samples.push(sample),
            None => syncs.push(HostSync {
                host,
                samples: vec![sample],
            }),
        }
    }
    let reference = reference.ok_or_else(|| ParseError::eof("missing `reference` line"))?;
    Ok((reference, syncs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_syncs(symbols: &SymbolTable) -> Vec<HostSync> {
        vec![
            HostSync {
                host: symbols.lookup_host("h2").unwrap(),
                samples: vec![
                    SyncSample {
                        from_reference: true,
                        send: LocalNanos(100),
                        recv: LocalNanos(250),
                    },
                    SyncSample {
                        from_reference: false,
                        send: LocalNanos(500),
                        recv: LocalNanos(620),
                    },
                ],
            },
            HostSync {
                host: symbols.lookup_host("h3").unwrap(),
                samples: vec![SyncSample {
                    from_reference: true,
                    send: LocalNanos(105),
                    recv: LocalNanos(260),
                }],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut symbols = SymbolTable::for_hosts(["h1", "h2", "h3"]);
        let syncs = sample_syncs(&symbols);
        let h1 = symbols.lookup_host("h1").unwrap();
        let text = write(&symbols, h1, &syncs);
        let (reference, parsed) = parse(&mut symbols, &text).unwrap();
        assert_eq!(reference, h1);
        assert_eq!(parsed, syncs);
    }

    #[test]
    fn parse_interns_into_a_fresh_table() {
        let symbols = SymbolTable::for_hosts(["h1", "h2", "h3"]);
        let syncs = sample_syncs(&symbols);
        let text = write(&symbols, symbols.lookup_host("h1").unwrap(), &syncs);
        let mut fresh = SymbolTable::new();
        let (reference, parsed) = parse(&mut fresh, &text).unwrap();
        assert_eq!(fresh.host_name(reference), "h1");
        assert_eq!(fresh.num_hosts(), 3);
        assert_eq!(fresh.host_name(parsed[0].host), "h2");
    }

    #[test]
    fn errors() {
        let mut t = SymbolTable::new();
        assert!(parse(&mut t, "h2 1 5 6\n").is_err()); // no reference line
        assert!(parse(&mut t, "reference h1\nreference h1\n").is_err());
        assert!(parse(&mut t, "reference h1\nh2 2 5 6\n").is_err());
        assert!(parse(&mut t, "reference h1\nh2 1 5\n").is_err());
        assert!(parse(&mut t, "reference h1\nh2 1 x 6\n").is_err());
    }

    #[test]
    fn comments_ignored() {
        let text = "# stamp dump\nreference h1\n# body\nh2 0 1 2\n";
        let (_, parsed) = parse(&mut SymbolTable::new(), text).unwrap();
        assert_eq!(parsed[0].samples.len(), 1);
    }
}
