//! Property tests: every writer round-trips through its parser.

use loki_core::fault::{FaultExpr, Trigger};
use loki_core::ids::SymbolTable;
use loki_core::recorder::Recorder;
use loki_core::spec::{NodePlacement, StateMachineSpec, StudyDef};
use loki_core::study::Study;
use loki_core::time::LocalNanos;
use loki_spec::{expr, files, sm_spec, timeline_file, timestamps_file};
use proptest::prelude::*;

/// Identifier-ish names that survive whitespace-based parsing.
fn name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,11}".prop_map(|s| s)
}

fn fault_expr(depth: u32) -> BoxedStrategy<FaultExpr> {
    let atom = (name(), name()).prop_map(|(sm, st)| FaultExpr::atom(&sm, &st));
    if depth == 0 {
        atom.boxed()
    } else {
        let inner = fault_expr(depth - 1);
        prop_oneof![
            atom,
            (fault_expr(depth - 1), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (fault_expr(depth - 1), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fault_expr_roundtrip(e in fault_expr(3)) {
        let text = e.to_string();
        let parsed = expr::parse_expr(&text).unwrap();
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn sm_spec_roundtrip(
        states in prop::collection::vec(name(), 1..6),
        events in prop::collection::vec(name(), 0..6),
    ) {
        // Build a spec whose blocks reference only declared names.
        let state_refs: Vec<&str> = states.iter().map(String::as_str).collect();
        let event_refs: Vec<&str> = events.iter().map(String::as_str).collect();
        let mut builder = StateMachineSpec::builder("m")
            .states(&state_refs)
            .events(&event_refs);
        for (i, s) in state_refs.iter().enumerate() {
            let transitions: Vec<(&str, &str)> = event_refs
                .iter()
                .map(|e| (*e, state_refs[i % state_refs.len()]))
                .collect();
            builder = builder.state(s, &[], &transitions);
        }
        let spec = builder.build();
        let text = sm_spec::write(&spec);
        let parsed = sm_spec::parse("m", &text).unwrap();
        prop_assert_eq!(parsed, spec);
    }

    #[test]
    fn node_file_roundtrip(
        entries in prop::collection::vec((name(), prop::option::of(name())), 0..8)
    ) {
        let placements: Vec<NodePlacement> = entries
            .into_iter()
            .map(|(sm, host)| NodePlacement { sm, host })
            .collect();
        let text = files::write_node_file(&placements);
        prop_assert_eq!(files::parse_node_file(&text).unwrap(), placements);
    }

    #[test]
    fn timeline_roundtrip(
        times in prop::collection::vec(0u64..u64::MAX / 2, 1..20),
        inject_at in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let def = StudyDef::new("s")
            .machine(
                StateMachineSpec::builder("m")
                    .states(&["A", "B"])
                    .events(&["GO"])
                    .state("A", &[], &[("GO", "B")])
                    .state("B", &[], &[("GO", "A")])
                    .build(),
            )
            .fault("m", "f", FaultExpr::atom("m", "B"), Trigger::Always);
        let study = Study::compile(&def).unwrap();
        let m = study.sm_id("m").unwrap();
        let go = study.events.lookup("GO").unwrap();
        let b = study.states.lookup("B").unwrap();
        let f = study.fault_names.lookup("f").unwrap();

        let mut symbols = SymbolTable::for_hosts(["host1"]);
        let mut rec = Recorder::new(m, symbols.lookup_host("host1").unwrap());
        for (i, t) in times.iter().enumerate() {
            if *inject_at.get(i % inject_at.len()).unwrap_or(&false) {
                rec.record_injection(LocalNanos(*t), f);
            } else {
                rec.record_state_change(LocalNanos(*t), go, b);
            }
        }
        let timeline = rec.finish();
        let text = timeline_file::write(&study, &symbols, &timeline);
        let parsed = timeline_file::parse(&study, &mut symbols, &text).unwrap();
        prop_assert_eq!(parsed, timeline);
    }

    #[test]
    fn timestamps_roundtrip(
        sends in prop::collection::vec((any::<bool>(), 0u64..1u64<<62, 0u64..1u64<<62), 1..30)
    ) {
        use loki_core::campaign::{HostSync, SyncSample};
        let mut symbols = SymbolTable::for_hosts(["h1", "h2"]);
        let h1 = symbols.lookup_host("h1").unwrap();
        let syncs = vec![HostSync {
            host: symbols.lookup_host("h2").unwrap(),
            samples: sends
                .into_iter()
                .map(|(d, s, r)| SyncSample {
                    from_reference: d,
                    send: LocalNanos(s),
                    recv: LocalNanos(r),
                })
                .collect(),
        }];
        let text = timestamps_file::write(&symbols, h1, &syncs);
        let (reference, parsed) = timestamps_file::parse(&mut symbols, &text).unwrap();
        prop_assert_eq!(reference, h1);
        prop_assert_eq!(parsed, syncs);
    }
}
