//! The cascading-failure study: a state-triggered partition deposes the
//! primary *without killing it*, the network heals once the successor has
//! promoted itself — and the deposed primary's retry protocol then storms
//! a cluster that no longer acknowledges it. The storm is a causal loop
//! between the (already removed) network fault and the application's own
//! recovery machinery; `loki::analysis::cascade` detects it from the
//! global timeline as sustained post-heal message-rate growth.
//!
//! Three runs of the *same* study demonstrate the loop and both ways of
//! breaking it:
//!
//! 1. retries + partition  → storm (the causal loop closes);
//! 2. no retries           → quiet (the application half is missing);
//! 3. no partition         → no heal injection (the network half is
//!    missing; nothing ever deposes the primary).
//!
//! ```text
//! cargo run --example cascade_storm [experiments]
//! ```

use loki::analysis::cascade::{detect_cascade, CascadeConfig, CascadeVerdict};
use loki::analysis::{make_global, GlobalOptions};
use loki::apps::kvstore::{cascade_config, cascade_study, kv_factory, storm_retry, RetryConfig};
use loki::core::study::Study;
use loki::runtime::harness::{run_study, SimHarnessConfig};
use std::sync::Arc;

/// Runs `experiments` experiments of the cascade study with the given
/// retry/partition knobs and returns each experiment's cascade verdict.
fn run_scenario(
    label: &str,
    retry: Option<RetryConfig>,
    partition: bool,
    experiments: u32,
) -> Vec<CascadeVerdict> {
    let study = Arc::new(Study::compile(&cascade_study("cascade")).expect("valid study"));
    let data = run_study(
        &study,
        kv_factory(cascade_config(retry, partition)),
        &SimHarnessConfig::three_hosts(4242),
        experiments,
    )
    .expect("valid campaign config");
    let cfg = CascadeConfig::default();
    let verdicts: Vec<CascadeVerdict> = data
        .iter()
        .map(|exp| {
            let gt = make_global(&study, exp, &GlobalOptions::default())
                .expect("global timeline construction");
            detect_cascade(&study, &gt, &cfg)
        })
        .collect();
    for (i, v) in verdicts.iter().enumerate() {
        match v {
            CascadeVerdict::Storm { total, early, late } => println!(
                "  [{label}] experiment {i}: STORM  — {total} retries post-heal \
                 (first half {early}, second half {late}: still growing)"
            ),
            CascadeVerdict::Quiet { total, .. } => {
                println!("  [{label}] experiment {i}: quiet — {total} retries post-heal")
            }
            CascadeVerdict::NoHealInjection => {
                println!("  [{label}] experiment {i}: no heal injection (loop never armed)")
            }
        }
    }
    verdicts
}

fn main() {
    let experiments: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("1. retry protocol + state-triggered partition:");
    let storm = run_scenario("storm", Some(storm_retry()), true, experiments);

    println!("2. same study, retries disabled:");
    let no_retry = run_scenario("no-retry", None, true, experiments);

    println!("3. same study, partition disabled:");
    let no_partition = run_scenario("no-split", Some(storm_retry()), false, experiments);

    let mut ok = true;
    if !storm.iter().all(CascadeVerdict::is_storm) {
        println!("FAIL: the storm scenario did not storm in every experiment");
        ok = false;
    }
    if no_retry.iter().any(CascadeVerdict::is_storm) {
        println!("FAIL: disabling retries should break the loop");
        ok = false;
    }
    if no_partition.iter().any(CascadeVerdict::is_storm) {
        println!("FAIL: disabling the partition should break the loop");
        ok = false;
    }
    if ok {
        println!(
            "the loop needs both halves: retries x partition storms, \
             removing either side stays quiet"
        );
    } else {
        std::process::exit(1);
    }
}
