//! Off-line clock synchronization in isolation: how message exchanges
//! bound a remote clock's offset and drift, and why the bounds are
//! *guarantees* rather than estimates.
//!
//! ```text
//! cargo run --example clock_sync_demo
//! ```

use loki::clock::params::{ClockParams, VirtualClock};
use loki::clock::sync::{estimate_alpha_beta, SyncOptions};
use loki::core::campaign::SyncSample;

fn exchange(
    reference: &VirtualClock,
    machine: &VirtualClock,
    rounds: u64,
    period_ns: u64,
    delay_ns: impl Fn(u64) -> u64,
    start_ns: u64,
) -> Vec<SyncSample> {
    let mut samples = Vec::new();
    for k in 0..rounds {
        let t = start_ns + k * period_ns;
        samples.push(SyncSample {
            from_reference: true,
            send: reference.read(t),
            recv: machine.read(t + delay_ns(2 * k)),
        });
        let t2 = t + period_ns / 2;
        samples.push(SyncSample {
            from_reference: false,
            send: machine.read(t2),
            recv: reference.read(t2 + delay_ns(2 * k + 1)),
        });
    }
    samples
}

fn main() {
    // A remote machine whose clock is 2 ms ahead and runs 150 ppm fast.
    let reference = VirtualClock::new(ClockParams::ideal());
    let machine = VirtualClock::new(ClockParams::with_drift_ppm(2e6, 150.0));
    let (true_alpha, true_beta) = machine.params().relative_to(reference.params());
    println!("true offset alpha = {true_alpha:.0} ns, true drift beta = {true_beta:.9}");

    let jitter = |k: u64| 40_000 + (k * 37_813) % 160_000; // 40–200 µs one-way
    println!();
    println!(
        "{:>8} {:>14} {:>14} {:>16} {:>16}",
        "rounds", "alpha width", "beta width", "alpha in bounds", "beta in bounds"
    );
    for rounds in [2u64, 5, 10, 20, 50] {
        // Pre-phase at t=0 and post-phase 10 s later (the long baseline is
        // what pins the drift).
        let mut samples = exchange(&reference, &machine, rounds, 1_000_000, jitter, 0);
        samples.extend(exchange(
            &reference,
            &machine,
            rounds,
            1_000_000,
            jitter,
            10_000_000_000,
        ));
        let bounds = estimate_alpha_beta(&samples, &SyncOptions::default()).unwrap();
        println!(
            "{:>8} {:>11.1} us {:>14.2e} {:>16} {:>16}",
            rounds,
            bounds.alpha_width() / 1e3,
            bounds.beta_width(),
            bounds.alpha_lo <= true_alpha && true_alpha <= bounds.alpha_hi,
            bounds.beta_lo <= true_beta && true_beta <= bounds.beta_hi,
        );
    }

    println!();
    println!("projection: local events map to global-time *intervals* that always");
    println!("contain the truth — the foundation of the conservative injection check:");
    let samples = {
        let mut s = exchange(&reference, &machine, 20, 1_000_000, jitter, 0);
        s.extend(exchange(
            &reference,
            &machine,
            20,
            1_000_000,
            jitter,
            10_000_000_000,
        ));
        s
    };
    let bounds = estimate_alpha_beta(&samples, &SyncOptions::default()).unwrap();
    for t_physical in [1_000_000_000u64, 5_000_000_000, 9_000_000_000] {
        let local = machine.read(t_physical);
        let truth = reference.read(t_physical);
        let projected = bounds.project(local);
        println!(
            "  local {:>14} -> global [{:.3}, {:.3}] ms (truth {:.3} ms, width {:.1} us)",
            local.as_nanos(),
            projected.lo.as_millis(),
            projected.hi.as_millis(),
            truth.as_millis_f64(),
            projected.width() / 1e3,
        );
    }
}
