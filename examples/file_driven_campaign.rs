//! The thesis's file-driven workflow (§5.6): write the specification files
//! (state machine specs, fault specs, node file) to disk in the original
//! formats, load them back into a study, derive the notify lists
//! automatically from the fault specifications, and run the campaign —
//! through the streaming pipeline, which analyzes and discards each
//! experiment as it completes.
//!
//! ```text
//! cargo run --example file_driven_campaign
//! ```

use loki::core::study::Study;
use loki::runtime::harness::{CampaignPipeline, SimHarnessConfig};
use loki::runtime::AppFactory;
use loki::runtime::{App, NodeCtx, Payload};
use loki::spec::campaign_loader::{
    load_budget_dir, load_study_dir, write_budget_dir, write_study_dir,
};
use loki::spec::{load_study, BudgetSpec, MachineSources};
use std::collections::BTreeMap;
use std::sync::Arc;

const PING_SPEC: &str = "\
# ping.sm — state machine specification (thesis §3.5.3 format)
global_state_list
IDLE
ACTIVE
end_global_state_list
event_list
WAKE
SLEEP
end_event_list

state IDLE
WAKE ACTIVE

state ACTIVE
SLEEP IDLE
default EXIT
";

const PONG_SPEC: &str = "\
global_state_list
IDLE
ACTIVE
end_global_state_list
event_list
WAKE
SLEEP
end_event_list

state IDLE
WAKE ACTIVE

state ACTIVE
SLEEP IDLE
default EXIT
";

const PONG_FAULTS: &str = "\
# pong.flt — fault specification (thesis §3.5.5 format)
poke ((ping:ACTIVE) & (pong:IDLE)) always
";

const NODE_FILE: &str = "\
ping host1
pong host2
";

struct Pulser {
    period_ns: u64,
    pulses: u32,
}

impl App for Pulser {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
        ctx.notify_event("IDLE").unwrap();
        ctx.set_timer(100_000_000, 1);
    }
    fn on_app_message(&mut self, _: &mut NodeCtx<'_>, _: loki::core::ids::SmId, _: Payload) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            1 => {
                ctx.notify_event("WAKE").unwrap();
                ctx.set_timer(self.period_ns, 2);
            }
            2 => {
                ctx.notify_event("SLEEP").unwrap();
                self.pulses -= 1;
                if self.pulses == 0 {
                    ctx.exit();
                } else {
                    ctx.set_timer(self.period_ns, 1);
                }
            }
            _ => {}
        }
    }
    fn on_fault(&mut self, ctx: &mut NodeCtx<'_>, fault: &str) {
        ctx.record_user_message(format!("probe injected {fault}"));
    }
}

fn main() {
    // --- assemble the study from the original file formats -------------------
    let mut machines = BTreeMap::new();
    machines.insert(
        "ping".to_owned(),
        MachineSources {
            sm_spec: PING_SPEC.to_owned(),
            fault_spec: String::new(),
        },
    );
    machines.insert(
        "pong".to_owned(),
        MachineSources {
            sm_spec: PONG_SPEC.to_owned(),
            fault_spec: PONG_FAULTS.to_owned(),
        },
    );
    let def = load_study("file-driven", NODE_FILE, &machines)
        .expect("specification files parse")
        // §5.3: notify lists derive from the fault specifications — pong's
        // fault observes (ping:ACTIVE), so ping's ACTIVE must notify pong.
        .derive_notify_lists();
    println!(
        "ping's ACTIVE notify list (derived): {:?}",
        def.machines[0].state_def("ACTIVE").unwrap().notify
    );

    // Round-trip through an on-disk campaign directory, as the real tool
    // would store it.
    let dir = std::env::temp_dir().join(format!("loki-campaign-{}", std::process::id()));
    write_study_dir(&def, &dir).expect("campaign directory written");
    // Per-experiment budgets ride in the same directory: a runaway
    // experiment (infinite timer loop, event storm) is cut off
    // deterministically instead of wedging the campaign.
    let budget = BudgetSpec {
        max_virtual_time_ns: Some(30_000_000_000),
        max_events: Some(1_000_000),
        ..BudgetSpec::default()
    };
    write_budget_dir(&budget, &dir).expect("budget file written");
    let reloaded = load_study_dir("file-driven", &dir).expect("campaign directory loads");
    let reloaded_budget = load_budget_dir(&dir).expect("budget file loads");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(reloaded.machines, def.machines);
    assert_eq!(reloaded_budget, budget);
    println!("campaign directory round-trip (incl. budget file): ok");

    // --- compile and run -------------------------------------------------------
    let study = Study::compile_arc(&def).expect("study compiles");
    let factory: AppFactory = Arc::new(|study: &Study, sm| -> Box<dyn App> {
        // Periods comfortably above the notification latency (a few OS
        // timeslices through the daemons), so injections are provable.
        let period_ns = if study.sms.name(sm) == "ping" {
            150_000_000
        } else {
            215_000_000
        };
        Box::new(Pulser {
            period_ns,
            pulses: 3,
        })
    });
    let mut harness = SimHarnessConfig::three_hosts(55);
    harness.hosts.truncate(2);
    // Arm the budgets the campaign directory specified.
    harness.max_virtual_time = budget.max_virtual_time_ns;
    harness.max_events = budget.max_events;
    let debug = std::env::var("LOKI_DEBUG").is_ok();
    let pipeline = CampaignPipeline::new(study, factory, harness);
    let summary = pipeline
        .run(8, |a| {
            if !debug {
                return;
            }
            if let Some(v) = &a.verdict {
                eprintln!(
                    "exp {}: accepted={} missing={:?}",
                    a.experiment, v.accepted, v.missing
                );
                for c in &v.checks {
                    eprintln!(
                        "   check fault {:?} at {}: {:?}",
                        c.fault, c.bounds, c.verdict
                    );
                }
            } else {
                eprintln!("exp {}: end={:?} err={:?}", a.experiment, a.end, a.error);
            }
        })
        .expect("valid campaign config");
    println!(
        "{} injections of `poke ((ping:ACTIVE) & (pong:IDLE)) always` across 8 runs; \
         {}/8 experiments provably correct",
        summary.injections, summary.accepted
    );
}
