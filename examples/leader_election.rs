//! The thesis's Chapter-5 campaign end-to-end: the leader election test
//! application with the `bfault1` leader fault, crash/restart, off-line
//! analysis, and the §5.8 coverage measure.
//!
//! ```text
//! cargo run --example leader_election [experiments]
//! ```

use loki::analysis::{accepted_timelines, analyze, AnalysisOptions};
use loki::apps::election::{election_factory, election_study, ElectionConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::daemons::{RestartPlacement, RestartPolicy};
use loki::runtime::harness::{run_study, SimHarnessConfig};
use std::rc::Rc;
use std::sync::Arc;

fn main() {
    let experiments: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    // Study 1 of §5.8: bfault1 (black:LEAD), injected by black's own probe
    // whenever black leads; the fault crashes the leader; the system may
    // restart it (coverage).
    let def = election_study("study1").fault(
        "black",
        "bfault1",
        FaultExpr::atom("black", "LEAD"),
        Trigger::Once,
    );
    let study = Arc::new(Study::compile(&def).expect("valid study"));

    let mut harness = SimHarnessConfig::three_hosts(2026);
    harness.restart = Some(RestartPolicy {
        probability: 0.8, // the system's true coverage
        delay_ns: 60_000_000,
        max_restarts: 1,
        placement: RestartPlacement::NextHost, // restart on a different host
    });

    println!("running {experiments} experiments of study 1 (bfault1 on black:LEAD)...");
    let data = run_study(
        &study,
        election_factory(ElectionConfig::default()),
        &harness,
        experiments,
    )
    .expect("valid campaign config");

    // Off-line analysis: clock sync, global timelines, correctness check.
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let accepted = accepted_timelines(&analyzed);
    println!(
        "analysis: {}/{} experiments accepted",
        accepted.len(),
        analyzed.len()
    );

    // The §5.8 coverage study measure:
    //   ((default,      (black:CRASH),      total_duration(T, ...)),
    //    ((OBS > 0),    (black:RESTART_SM), total_duration(T, ...) > 0))
    let ever = |tl: &loki::measure::PredicateTimeline| {
        let (lo, hi) = tl.window;
        if tl.total_true(lo, hi) > 0.0 {
            1.0
        } else {
            0.0
        }
    };
    let measure = StudyMeasure::new("coverage-black")
        .step(MeasureStep {
            subset: SubsetSel::All,
            predicate: Predicate::state("black", "CRASH"),
            observation: ObservationFn::total_true(),
        })
        .step(MeasureStep {
            subset: SubsetSel::Gt(0.0),
            predicate: Predicate::state("black", "RESTART_SM"),
            observation: ObservationFn::User(Rc::new(ever)),
        });

    let values = measure
        .apply_all(&study, accepted.iter().copied())
        .expect("measure evaluates");
    println!(
        "black crashed in {} accepted experiments (it must win the election first)",
        values.len()
    );
    if let Some(stats) = MomentStats::from_sample(&values) {
        println!(
            "coverage of a leader error in black: {:.2} (true value 0.8)",
            stats.mean()
        );
    } else {
        println!("no crashes observed — rerun with more experiments");
    }

    // Restarts on *different hosts* show up in the timelines:
    for a in analyzed.iter().filter(|a| a.accepted()) {
        if let Some(tl) = a.data.timeline_for(study.sm_id("black").unwrap()) {
            if tl.stints.len() > 1 {
                println!(
                    "experiment {}: black ran on {:?}",
                    a.data.experiment,
                    tl.stints
                        .iter()
                        .map(|s| a.data.host_name(s.host))
                        .collect::<Vec<_>>()
                );
            }
        }
    }
}
