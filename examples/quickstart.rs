//! Quickstart: the whole Loki pipeline in one file.
//!
//! 1. Specify a two-machine system (state machines + a global-state fault).
//! 2. Implement the application against the probe interface — once.
//! 3. Run the streaming campaign pipeline on the simulation backend: each
//!    experiment is executed, analyzed (off-line clock sync → global
//!    timeline → correctness check), and folded into the measure the
//!    moment it finishes — raw data never outlives its worker.
//! 4. Read the measure estimate off the accumulator.
//! 5. Re-run the *same* application on the real-concurrency thread backend.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loki::core::fault::{FaultExpr, Trigger};
use loki::core::spec::{StateMachineSpec, StudyDef};
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::harness::{Backend, CampaignPipeline, SimHarnessConfig};
use loki::runtime::AppFactory;
use loki::runtime::{App, NodeCtx, Payload};
use std::sync::Arc;

/// `worker` grinds through INIT → BUSY → DONE; `observer` watches and
/// injects a fault whenever the worker is BUSY — based purely on its
/// (possibly stale) view of the *global* state.
struct Worker;
struct Observer;

impl App for Worker {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
        ctx.notify_event("INIT").unwrap();
        ctx.set_timer(100_000_000, 1); // 100 ms of setup
    }
    fn on_app_message(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _from: loki::core::ids::SmId,
        _payload: Payload,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            1 => {
                ctx.notify_event("GO").unwrap(); // -> BUSY
                ctx.set_timer(40_000_000, 2); // 40 ms of work
            }
            2 => {
                ctx.notify_event("FINISH").unwrap(); // -> DONE
                ctx.exit();
            }
            _ => {}
        }
    }
    fn on_fault(&mut self, _ctx: &mut NodeCtx<'_>, _fault: &str) {}
}

impl App for Observer {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
        ctx.notify_event("WATCH").unwrap();
        ctx.set_timer(400_000_000, 1);
    }
    fn on_app_message(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _from: loki::core::ids::SmId,
        _payload: Payload,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == 1 {
            ctx.notify_event("STOP").unwrap();
            ctx.exit();
        }
    }
    fn on_fault(&mut self, ctx: &mut NodeCtx<'_>, fault: &str) {
        // The probe's injectFault(): here we only log; campaigns usually
        // crash/corrupt the process.
        ctx.record_user_message(format!("injected {fault}"));
    }
}

fn main() {
    // --- 1. specification ---------------------------------------------------
    let def = StudyDef::new("quickstart")
        .machine(
            StateMachineSpec::builder("worker")
                .states(&["INIT", "BUSY", "DONE"])
                .events(&["GO", "FINISH"])
                // BUSY notifies the observer: that's the partial view of
                // global state the fault needs.
                .state("INIT", &["observer"], &[("GO", "BUSY")])
                .state("BUSY", &["observer"], &[("FINISH", "DONE")])
                .state("DONE", &["observer"], &[])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("observer")
                .states(&["WATCH"])
                .events(&["STOP"])
                .state("WATCH", &[], &[("STOP", "EXIT")])
                .build(),
        )
        .fault(
            "observer",
            "poke_busy_worker",
            FaultExpr::atom("worker", "BUSY"),
            Trigger::Once,
        )
        .place("worker", "host1")
        .place("observer", "host2");
    let study = Study::compile_arc(&def).expect("specification is valid");

    // --- 2./3./4. the streaming campaign pipeline -----------------------------
    // Execution, clock sync, global-timeline construction, verdict
    // checking, and the measure fold all happen per experiment, on the
    // worker pool; at no point does the campaign hold more than one raw
    // experiment per worker.
    let factory: AppFactory = Arc::new(|study: &Study, sm| -> Box<dyn App> {
        if study.sms.name(sm) == "worker" {
            Box::new(Worker)
        } else {
            Box::new(Observer)
        }
    });
    let mut harness = SimHarnessConfig::three_hosts(7);
    harness.hosts.truncate(2);

    // "How long was the worker BUSY?" across accepted experiments.
    let measure = StudyMeasure::new("busy-time").step(MeasureStep {
        subset: SubsetSel::All,
        predicate: Predicate::state("worker", "BUSY"),
        observation: ObservationFn::total_true(),
    });
    let mut busy_time = StudyAccumulator::new(measure);
    let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), harness.clone());
    let summary = pipeline
        .run(10, |analyzed| {
            busy_time
                .push(&study, &analyzed)
                .expect("measure evaluates");
        })
        .expect("valid campaign config");
    println!(
        "ran {} experiments on {} workers (peak raw experiments in memory: {})",
        summary.experiments, summary.workers, summary.peak_raw_retained
    );
    println!(
        "analysis accepted {}/{} experiments (injections provably in (worker:BUSY))",
        summary.accepted, summary.experiments
    );
    if let Some(stats) = busy_time.stats() {
        println!(
            "busy time: mean {:.2} ms, std-dev {:.3} ms over {} experiments",
            stats.mean(),
            stats.std_dev(),
            stats.n
        );
    }

    // --- 5. one app, every backend ---------------------------------------------
    // The exact same `App` implementations and factory now run with every
    // node as an OS thread: real time, real concurrency, nondeterministic
    // interleavings — and the identical streaming analysis pipeline.
    let threaded = harness.backend(Backend::Threads);
    let summary = CampaignPipeline::new(study, factory, threaded)
        .run(2, |_| {})
        .expect("valid campaign config");
    println!(
        "thread backend: {}/{} genuinely concurrent experiments provably correct",
        summary.accepted, summary.experiments
    );
}
