//! Fault-injecting the primary-backup replicated store: targeted crash of
//! the primary, then measuring the *unavailability window* — how long no
//! machine was `PRIMARY` — with a global-state predicate no single-node
//! injector could express.
//!
//! ```text
//! cargo run --example replicated_store [experiments]
//! ```

use loki::analysis::{accepted_timelines, analyze, AnalysisOptions};
use loki::apps::kvstore::{kv_factory, kv_study, KvConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::harness::{run_study, SimHarnessConfig};
use std::sync::Arc;

fn main() {
    let experiments: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);

    // kv1 starts as primary; the fault kills it exactly while it is
    // PRIMARY (a *state-targeted* crash, not a random one).
    let def = kv_study("failover", 3).fault(
        "kv1",
        "kill_primary",
        FaultExpr::atom("kv1", "PRIMARY"),
        Trigger::Once,
    );
    let study = Arc::new(Study::compile(&def).expect("valid study"));

    println!("running {experiments} experiments with a PRIMARY-targeted crash...");
    let data = run_study(
        &study,
        kv_factory(KvConfig::default()),
        &SimHarnessConfig::three_hosts(99),
        experiments,
    )
    .expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let accepted = accepted_timelines(&analyzed);
    println!("analysis accepted {}/{}", accepted.len(), analyzed.len());

    // Unavailability: total time during which *no* machine was PRIMARY,
    // counted from the crash (first experiment half is setup).
    let no_primary = Predicate::state("kv1", "PRIMARY")
        .or(Predicate::state("kv2", "PRIMARY"))
        .or(Predicate::state("kv3", "PRIMARY"))
        .not();
    let unavailability = StudyMeasure::new("unavailability")
        .step(MeasureStep {
            subset: SubsetSel::All,
            predicate: Predicate::state("kv1", "CRASH"),
            observation: ObservationFn::total_true(),
        })
        .step(MeasureStep {
            subset: SubsetSel::Gt(0.0), // only experiments where kv1 crashed
            predicate: no_primary.clone(),
            // The *second* false-run is the failover gap: the first "no
            // primary" period is initialization. duration(F of PRIMARY...)
            // is expressed directly on the no_primary predicate: measure
            // the true-run after its second rise.
            observation: ObservationFn::duration(loki::measure::TrueFalse::True, 2, 0.0, 1e9),
        });

    let gaps: Vec<f64> = accepted
        .iter()
        .filter_map(|gt| unavailability.apply(&study, gt).unwrap())
        .collect();
    match MomentStats::from_sample(&gaps) {
        Some(stats) => {
            println!(
                "failover unavailability: mean {:.1} ms, std-dev {:.2} ms, p95 {:.1} ms ({} samples)",
                stats.mean(),
                stats.std_dev(),
                stats.percentile(0.95),
                stats.n
            );
            println!(
                "(expected ≈ fail_timeout {} ms + promote_delay {} ms + detection slack)",
                KvConfig::default().fail_timeout_ns / 1_000_000,
                KvConfig::default().promote_delay_ns / 1_000_000
            );
        }
        None => println!("kv1 never crashed — rerun with more experiments"),
    }
}
