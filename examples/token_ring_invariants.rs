//! Checking a *global invariant* with Loki's measure language: in the
//! token-ring protocol, two machines must never hold the token
//! simultaneously — a statement about the combined state of multiple
//! components that only a global-timeline tool can check.
//!
//! We also inject a message-drop fault (a lost token) and measure the
//! recovery latency of the regeneration protocol.
//!
//! ```text
//! cargo run --example token_ring_invariants [experiments]
//! ```

use loki::analysis::{accepted_timelines, analyze, AnalysisOptions};
use loki::apps::token_ring::{ring_factory, ring_study, RingConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::probe::{ActionProbe, FaultAction};
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::harness::{run_study, SimHarnessConfig};
use std::sync::Arc;

fn main() {
    let experiments: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    // Drop one token pass while tr1 holds the token.
    let def = ring_study("ring", 3).fault(
        "tr1",
        "drop_pass",
        FaultExpr::atom("tr1", "HAS_TOKEN"),
        Trigger::Once,
    );
    let study = Arc::new(Study::compile(&def).expect("valid study"));
    let app_cfg = RingConfig {
        probe: ActionProbe::new().on("drop_pass", FaultAction::DropMessages { count: 1 }),
        ..Default::default()
    };

    println!("running {experiments} experiments with a dropped token pass...");
    let data = run_study(
        &study,
        ring_factory(app_cfg),
        &SimHarnessConfig::three_hosts(314),
        experiments,
    )
    .expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let accepted = accepted_timelines(&analyzed);
    println!("analysis accepted {}/{}", accepted.len(), analyzed.len());

    // --- invariant: mutual exclusion ------------------------------------------
    // total_duration of (tri:HAS_TOKEN) & (trj:HAS_TOKEN) must be 0.
    let pairs = [("tr1", "tr2"), ("tr1", "tr3"), ("tr2", "tr3")];
    let mut worst = 0.0f64;
    for (a, b) in pairs {
        let m = StudyMeasure::new("mutex").step(MeasureStep {
            subset: SubsetSel::All,
            predicate: Predicate::state(a, "HAS_TOKEN").and(Predicate::state(b, "HAS_TOKEN")),
            observation: ObservationFn::total_true(),
        });
        for gt in &accepted {
            if let Some(v) = m.apply(&study, gt).unwrap() {
                worst = worst.max(v);
            }
        }
    }
    println!("mutual exclusion: worst simultaneous HAS_TOKEN time = {worst:.3} ms (must be 0)");

    // --- recovery latency ------------------------------------------------------
    // Time from a TOKEN_LOST declaration to the next HAS_TOKEN anywhere.
    let any_token = Predicate::state("tr1", "HAS_TOKEN")
        .or(Predicate::state("tr2", "HAS_TOKEN"))
        .or(Predicate::state("tr3", "HAS_TOKEN"));
    let any_recover = Predicate::state("tr1", "RECOVER")
        .or(Predicate::state("tr2", "RECOVER"))
        .or(Predicate::state("tr3", "RECOVER"));
    let recovery = StudyMeasure::new("recovery")
        .step(MeasureStep {
            subset: SubsetSel::All,
            predicate: any_recover,
            observation: ObservationFn::total_true(),
        })
        .step(MeasureStep {
            subset: SubsetSel::Gt(0.0), // token loss occurred
            predicate: any_token.not(),
            // The longest token drought is the loss-to-regeneration gap.
            observation: ObservationFn::User(std::rc::Rc::new(|tl| {
                tl.steps()
                    .spans()
                    .iter()
                    .map(|(lo, hi)| hi - lo)
                    .fold(0.0, f64::max)
                    / 1e6
            })),
        });
    let gaps: Vec<f64> = accepted
        .iter()
        .filter_map(|gt| recovery.apply(&study, gt).unwrap())
        .collect();
    match MomentStats::from_sample(&gaps) {
        Some(stats) => println!(
            "token-loss recovery: longest drought mean {:.1} ms over {} experiments \
             (≈ loss_timeout {} ms + regen_delay {} ms)",
            stats.mean(),
            stats.n,
            RingConfig::default().loss_timeout_ns / 1_000_000,
            RingConfig::default().regen_delay_ns / 1_000_000,
        ),
        None => println!("no token loss observed"),
    }
}
