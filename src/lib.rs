//! # Loki — state-driven fault injection for distributed systems
//!
//! A Rust reproduction of **Loki** (Chandra, Lefever, Cukier, Sanders —
//! DSN 2000 / UIUC CRHC-00-09): a fault injector that injects faults into a
//! distributed system *based on its global state*, verifies after the fact —
//! via off-line clock synchronization — that every injection landed in the
//! intended global state, and estimates dependability and performance
//! measures from the experiments that pass that check.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `loki-core` | state machines, fault parser, recorder, probes, campaigns |
//! | [`clock`] | `loki-clock` | virtual clocks, convex-hull offline synchronization |
//! | [`spec`] | `loki-spec` | parsers/writers for the thesis's file formats |
//! | [`sim`] | `loki-sim` | deterministic discrete-event simulation substrate |
//! | [`runtime`] | `loki-runtime` | daemons, transports, node lifecycle, experiment runner |
//! | [`analysis`] | `loki-analysis` | global timeline + injection correctness checking |
//! | [`measure`] | `loki-measure` | predicates, observation functions, campaign statistics |
//! | [`apps`] | `loki-apps` | instrumented example applications |
//!
//! See `examples/quickstart.rs` for an end-to-end tour: specify → run →
//! analyze → measure.

pub use loki_analysis as analysis;
pub use loki_apps as apps;
pub use loki_clock as clock;
pub use loki_core as core;
pub use loki_measure as measure;
pub use loki_runtime as runtime;
pub use loki_sim as sim;
pub use loki_spec as spec;
