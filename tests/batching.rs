//! Many-worlds batching acceptance: interleaving K experiments per worker
//! through one reused `WorldSet` must be *unobservable* in the results.
//! The sweep below pins byte-identical study output for batch
//! K ∈ {1, 2, 4, 8} crossed with worker counts ∈ {1, 2, 4} against the
//! per-experiment baseline engine (a fresh simulation per experiment), and
//! checks the pipeline's retention stays within the documented
//! workers × batch bound. `run_study` — which still runs per-experiment —
//! must agree too, pinning that a reset-reused world replays exactly like
//! a fresh one.

use loki::analysis::AnalyzedExperiment;
use loki::apps::kvstore::{cascade_probe, cascade_study, kv_factory, storm_retry, KvConfig};
use loki::apps::token_ring::{ring_factory, ring_study, RingConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::probe::FaultAction;
use loki::core::study::Study;
use loki::runtime::harness::{
    run_study_with_workers, CampaignPipeline, PipelineSummary, SimHarnessConfig,
};
use std::sync::Arc;

/// The token-ring campaign: kill the holder once it provably holds the
/// token. Rich enough to exercise injections, restarts of the token, and
/// sync phases in every experiment.
fn ring_campaign() -> (Arc<Study>, loki::runtime::AppFactory) {
    let def = ring_study("ring-batching", 3).fault(
        "tr2",
        "kill_holder",
        FaultExpr::atom("tr2", "HAS_TOKEN"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).expect("valid study");
    (study, ring_factory(RingConfig::default()))
}

/// Runs the pipeline and collects every compact result in sink order.
fn run_collect(
    pipeline: &CampaignPipeline,
    experiments: u32,
    workers: usize,
) -> (Vec<AnalyzedExperiment>, PipelineSummary) {
    let mut out = Vec::with_capacity(experiments as usize);
    let summary = pipeline
        .run_with_workers(experiments, workers, |analyzed| out.push(analyzed))
        .expect("valid campaign config");
    (out, summary)
}

#[test]
fn batched_results_are_byte_identical_across_k_and_workers() {
    let (study, factory) = ring_campaign();
    let cfg = SimHarnessConfig::three_hosts(0xBA7C);
    let experiments = 10u32;

    // Reference: the per-experiment baseline engine, one worker — the
    // pre-batching path, byte for byte.
    let baseline_pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone())
        .per_experiment_baseline();
    let (baseline, baseline_summary) = run_collect(&baseline_pipeline, experiments, 1);
    assert_eq!(baseline.len(), experiments as usize);
    assert_eq!(baseline_summary.batch, 1);
    assert!(
        baseline.iter().any(|a| a.injections > 0),
        "campaign must inject"
    );
    // The baseline retires its context after every experiment, so the
    // recycling counters stay at their documented zeros.
    assert_eq!(baseline_summary.actor_reuses, 0);
    assert_eq!(baseline_summary.timeline_reuses, 0);
    assert_eq!(baseline_summary.events, 0);

    for k in [1usize, 2, 4, 8] {
        for workers in [1usize, 2, 4] {
            // Explicit batch: these tests must not read LOKI_BATCH (the
            // env-validation test owns the environment variable).
            let mut cfg = cfg.clone();
            cfg.batch = Some(k);
            let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg);
            let (streamed, summary) = run_collect(&pipeline, experiments, workers);

            // Sink sees every experiment exactly once, in index order.
            let indices: Vec<u32> = streamed.iter().map(|a| a.experiment).collect();
            assert_eq!(indices, (0..experiments).collect::<Vec<u32>>());

            // Byte-identical compact results and summary counters.
            assert_eq!(
                streamed, baseline,
                "K={k} workers={workers}: results diverged from the per-experiment baseline"
            );
            assert_eq!(summary.batch, k);
            assert_eq!(summary.accepted, baseline_summary.accepted);
            assert_eq!(summary.completed, baseline_summary.completed);
            assert_eq!(summary.injections, baseline_summary.injections);

            // Bounded retention: never more in-flight experiments than
            // workers × batch.
            assert!(
                (1..=workers * k).contains(&summary.peak_raw_retained),
                "K={k} workers={workers}: peak retention {}",
                summary.peak_raw_retained
            );

            // The batched path counts events and recycles hulls (the
            // post-sync phase alone reuses every pre-sync syncer), in
            // every matrix cell — while the results above stay identical.
            assert!(
                summary.events > 0,
                "K={k} workers={workers}: no events counted"
            );
            assert!(
                summary.actor_reuses > 0,
                "K={k} workers={workers}: no pooled actor reuse"
            );
        }
    }

    // The per-experiment `run_study` path agrees with the batched
    // pipeline's verdict-relevant data: reset-reused worlds replay exactly
    // like the fresh worlds `run_study` builds.
    let raw = run_study_with_workers(&study, factory, &cfg, experiments, 2)
        .expect("valid campaign config");
    for (data, analyzed) in raw.iter().zip(&baseline) {
        assert_eq!(data.experiment, analyzed.experiment);
        assert_eq!(data.end, analyzed.end, "experiment end diverged");
    }
}

/// The cascading-failure study with a lossy link layered on top: the
/// network fault plane (partition, heal, probabilistic link faults) plus
/// the retry storm pushing heavy traffic through it. Every drop / dup /
/// corrupt / reorder decision draws from the per-experiment RNG, so this
/// is the densest RNG-consumption campaign the suite has.
fn netfault_campaign() -> (Arc<Study>, loki::runtime::AppFactory) {
    let def = cascade_study("netfault-batching").fault(
        "kv2",
        "lossy",
        FaultExpr::atom("kv2", "BACKUP"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).expect("valid study");
    let probe = cascade_probe(true).on(
        "lossy",
        FaultAction::LinkFault {
            from: "host2".to_owned(),
            to: "host3".to_owned(),
            drop_prob: 0.2,
            dup_prob: 0.1,
            reorder_ns: 200_000,
            corrupt_prob: 0.05,
            extra_latency_ns: 30_000,
        },
    );
    let cfg = KvConfig {
        retry: Some(storm_retry()),
        probe,
        ..KvConfig::default()
    };
    (study, kv_factory(cfg))
}

#[test]
fn net_fault_campaign_batches_byte_identically() {
    // Batching interleaves K experiments through one reused world, and the
    // network fault plane is part of that world: its armed state and its
    // RNG draws must reset and replay exactly, or a partition from
    // experiment N would leak into experiment N+1's messages. Pin the
    // K × workers matrix against the per-experiment baseline under the
    // full fault vocabulary.
    let (study, factory) = netfault_campaign();
    let cfg = SimHarnessConfig::three_hosts(0x2C2C);
    let experiments = 8u32;

    let baseline_pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone())
        .per_experiment_baseline();
    let (baseline, _) = run_collect(&baseline_pipeline, experiments, 1);
    assert_eq!(baseline.len(), experiments as usize);
    assert!(
        baseline.iter().any(|a| a.injections >= 2),
        "partition and heal must both fire"
    );

    for k in [1usize, 8] {
        for workers in [1usize, 4] {
            let mut cfg = cfg.clone();
            cfg.batch = Some(k);
            let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg);
            let (streamed, summary) = run_collect(&pipeline, experiments, workers);
            assert_eq!(
                streamed, baseline,
                "K={k} workers={workers}: net-fault results diverged from baseline"
            );
            assert_eq!(summary.batch, k);
        }
    }
}

#[test]
fn pooling_recycles_across_experiments_without_changing_results() {
    // A restart-policy campaign exercises the full pooled-actor lifecycle:
    // mid-experiment node respawns (supervisor restarts the killed token
    // holder) plus cross-experiment recycling of daemons, syncers, the
    // central daemon, the supervisor, and capacity-retaining timeline
    // shells. One worker with a small batch and more experiments than the
    // batch guarantees scripts are recycled through the spare list.
    use loki::runtime::daemons::RestartPolicy;
    let (study, factory) = ring_campaign();
    let mut cfg = SimHarnessConfig::three_hosts(0x9001);
    cfg.restart = Some(RestartPolicy::default());
    cfg.batch = Some(2);

    let baseline_pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone())
        .per_experiment_baseline();
    let (baseline, _) = run_collect(&baseline_pipeline, 12, 1);

    let pipeline = CampaignPipeline::new(study, factory, cfg);
    let (streamed, summary) = run_collect(&pipeline, 12, 1);

    assert_eq!(streamed, baseline, "pooling changed campaign results");
    assert!(
        summary.actor_reuses > 0,
        "restart campaign must reuse pooled hulls"
    );
    assert!(
        summary.timeline_reuses > 0,
        "recycled scripts must reuse reclaimed timeline shells"
    );
    assert!(summary.events > 0);
}

#[test]
fn dropping_sink_recycles_result_shells_in_steady_state() {
    // The result-shell recycling loop: a sink that drops its
    // `AnalyzedExperiment` sends the `GlobalTimeline` vectors back to the
    // workers, so in steady state `make_global` fills recycled shells and
    // fresh allocations stay bounded by the in-flight window — not by the
    // campaign length.
    let (study, factory) = ring_campaign();
    let mut cfg = SimHarnessConfig::three_hosts(0x5E11);
    cfg.batch = Some(4);
    let experiments = 200u32;

    let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone());
    let summary = pipeline
        .run_with_workers(experiments, 1, drop)
        .expect("valid campaign config");

    // Every analysis fills exactly one shell, recycled or fresh.
    assert_eq!(
        summary.result_shell_reuses + summary.result_shell_allocs,
        u64::from(experiments)
    );
    // Steady state: fresh allocations are bounded by the in-flight result
    // window (reorder depth + the shell currently being filled), which for
    // one worker at K=4 is a handful — two hundred experiments must not
    // allocate two hundred shells.
    assert!(
        summary.result_shell_allocs <= 10,
        "fresh shell allocs {} not bounded by the in-flight window",
        summary.result_shell_allocs
    );
    assert!(summary.result_shell_reuses >= u64::from(experiments) - 10);

    // Contrast: a retaining sink (collect) keeps every shell alive until
    // after the run, so nothing flows back — one fresh alloc per
    // experiment, zero reuses. Same campaign, same results.
    let (collected, retaining) = CampaignPipeline::new(study, factory, cfg)
        .collect(experiments)
        .expect("valid campaign config");
    assert_eq!(collected.len(), experiments as usize);
    assert_eq!(retaining.result_shell_allocs, u64::from(experiments));
    assert_eq!(retaining.result_shell_reuses, 0);
}

#[test]
fn batch_env_override_is_validated_and_applied() {
    // All LOKI_BATCH manipulation lives in this one test; the other tests
    // in this binary pass `cfg.batch` explicitly, so nothing races.
    let (study, factory) = ring_campaign();
    let cfg = SimHarnessConfig::three_hosts(0xEB7);
    let experiments = 4u32;

    let mut forced_cfg = cfg.clone();
    forced_cfg.batch = Some(1);
    let forced_pipeline = CampaignPipeline::new(study.clone(), factory.clone(), forced_cfg);
    let (forced, _) = run_collect(&forced_pipeline, experiments, 1);

    std::env::set_var("LOKI_BATCH", "3");
    let env_pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone());
    let (via_env, summary) = run_collect(&env_pipeline, experiments, 1);
    assert_eq!(summary.batch, 3, "LOKI_BATCH not picked up");
    assert_eq!(via_env, forced, "batch size changed the results");

    // Invalid batch sizes are rejected loudly — a silent fallback would
    // run the campaign with a surprise interleaving width. Since the
    // survivability work these come back as typed `CampaignError`s.
    for bad in ["not-a-number", "0", "", "-2"] {
        std::env::set_var("LOKI_BATCH", bad);
        let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone());
        let err = pipeline
            .run_with_workers(experiments, 1, drop)
            .expect_err(&format!("LOKI_BATCH={bad:?} must be rejected"));
        assert!(err.to_string().contains("LOKI_BATCH"), "{err}");
    }

    // `batch: Some(0)` is rejected with the config-side message even when
    // the environment variable is valid.
    std::env::set_var("LOKI_BATCH", "2");
    let mut zero_cfg = cfg.clone();
    zero_cfg.batch = Some(0);
    let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), zero_cfg);
    let err = pipeline
        .run_with_workers(experiments, 1, drop)
        .expect_err("batch: Some(0) must be rejected");
    assert!(
        err.to_string().contains("batch size must be at least 1"),
        "{err}"
    );

    std::env::remove_var("LOKI_BATCH");
    let default_pipeline = CampaignPipeline::new(study, factory, cfg);
    let (auto, summary) = run_collect(&default_pipeline, experiments, 1);
    assert_eq!(summary.batch, 1, "default batch must be 1");
    assert_eq!(auto, forced);
}
