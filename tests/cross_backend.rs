//! Cross-backend acceptance: every app in `crates/apps` implements the
//! unified `App` trait exactly once, and that one implementation runs the
//! same study on both the deterministic simulation backend and the
//! real-concurrency thread backend.
//!
//! For each app this test checks that
//! * the simulation backend produces *identical fault-injection intent*
//!   (which faults fired, per machine, per experiment) across repeated
//!   runs and across worker counts;
//! * both backends produce `ExperimentData` the analysis pipeline
//!   consumes, with at least one experiment's injections provably correct.

use loki::analysis::{analyze, AnalysisOptions};
use loki::apps::election::{election_factory, election_study, ElectionConfig};
use loki::apps::kvstore::{kv_factory, kv_study, KvConfig};
use loki::apps::token_ring::{ring_factory, ring_study, RingConfig};
use loki::core::campaign::{ExperimentData, ExperimentEnd};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::probe::{ActionProbe, FaultAction};
use loki::core::recorder::RecordKind;
use loki::core::study::Study;
use loki::runtime::harness::{run_study, run_study_with_workers, Backend, SimHarnessConfig};
use loki::runtime::AppFactory;
use std::sync::Arc;

/// The fault names injected in one experiment, per machine in timeline
/// order — the campaign's injection *intent*, independent of timestamps.
fn injection_intent(study: &Study, data: &ExperimentData) -> Vec<(String, Vec<String>)> {
    data.timelines
        .iter()
        .map(|t| {
            let fired = t
                .records
                .iter()
                .filter_map(|r| match r.kind {
                    RecordKind::FaultInjection { fault } => {
                        Some(study.fault_names.name(fault).to_owned())
                    }
                    _ => None,
                })
                .collect();
            (t.sm_name.clone(), fired)
        })
        .collect()
}

/// Runs one app's campaign on both backends and checks the acceptance
/// criteria above.
fn check_cross_backend(label: &str, study: &Arc<Study>, factory: AppFactory, seed: u64) {
    let sim_cfg = SimHarnessConfig::three_hosts(seed);

    // --- deterministic backend -------------------------------------------
    let first = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 1);
    let rerun = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 1);
    let parallel = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 2);

    let intent: Vec<_> = first.iter().map(|d| injection_intent(study, d)).collect();
    assert!(
        intent.iter().flatten().any(|(_, fired)| !fired.is_empty()),
        "{label}: the sim campaign never injected"
    );
    let rerun_intent: Vec<_> = rerun.iter().map(|d| injection_intent(study, d)).collect();
    let parallel_intent: Vec<_> = parallel
        .iter()
        .map(|d| injection_intent(study, d))
        .collect();
    assert_eq!(intent, rerun_intent, "{label}: intent diverged across runs");
    assert_eq!(
        intent, parallel_intent,
        "{label}: intent diverged across worker counts"
    );

    let analyzed = analyze(study, first, &AnalysisOptions::default());
    assert!(
        analyzed.iter().any(|a| a.accepted()),
        "{label}: no sim experiment accepted by the analysis"
    );

    // --- thread backend: the same factory, real concurrency ---------------
    let thread_cfg = sim_cfg.clone().backend(Backend::Threads);
    let data = run_study(study, factory, &thread_cfg, 1);
    assert_eq!(data.len(), 1);
    let d = &data[0];
    assert_eq!(d.end, ExperimentEnd::Completed, "{label}: thread run hung");
    assert_eq!(
        d.timelines.len(),
        study.num_machines(),
        "{label}: missing thread timelines"
    );
    assert!(
        !d.pre_sync.is_empty() && !d.post_sync.is_empty(),
        "{label}: missing sync mini-phases"
    );
    assert!(
        d.total_injections() >= 1,
        "{label}: the thread campaign never injected"
    );
    let analyzed = analyze(study, data, &AnalysisOptions::default());
    assert!(
        analyzed.iter().any(|a| a.accepted()),
        "{label}: thread experiment rejected: {:?}",
        analyzed[0].verdict
    );
}

#[test]
fn election_runs_on_both_backends() {
    // Every machine faults on its *own* LEAD entry, so whichever machine
    // wins, an injection happens — and it happens with zero notification
    // latency, keeping it provably correct on both backends.
    let mut def = election_study("cross-election");
    for (fault, sm) in [
        ("bfault1", "black"),
        ("yfault1", "yellow"),
        ("gfault1", "green"),
    ] {
        def = def.fault(sm, fault, FaultExpr::atom(sm, "LEAD"), Trigger::Once);
    }
    let study = Study::compile_arc(&def).unwrap();
    // Durations shortened (the thread backend runs in real time) but with
    // detection timeouts several times larger than any plausible CI
    // scheduling stall, so a loaded runner cannot fake a failure.
    let cfg = ElectionConfig {
        init_delay_ns: 60_000_000,
        collect_timeout_ns: 80_000_000,
        heartbeat_interval_ns: 25_000_000,
        heartbeat_timeout_ns: 150_000_000,
        lifetime_ns: 1_000_000_000,
        restart_done_delay_ns: 15_000_000,
        ..Default::default()
    };
    check_cross_backend("election", &study, election_factory(cfg), 0xE1EC);
}

#[test]
fn kvstore_runs_on_both_backends() {
    let def = kv_study("cross-kv", 3).fault(
        "kv1",
        "kill_primary",
        FaultExpr::atom("kv1", "PRIMARY"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).unwrap();
    let cfg = KvConfig {
        init_delay_ns: 60_000_000,
        op_interval_ns: 20_000_000,
        fail_timeout_ns: 120_000_000,
        promote_delay_ns: 30_000_000,
        lifetime_ns: 700_000_000,
        ..Default::default()
    };
    check_cross_backend("kvstore", &study, kv_factory(cfg), 0x4B56);
}

#[test]
fn token_ring_runs_on_both_backends() {
    // A communication fault instead of a crash: the holder drops its next
    // pass, the ring detects the drought and regenerates the token.
    let def = ring_study("cross-ring", 3).fault(
        "tr2",
        "drop_pass",
        FaultExpr::atom("tr2", "HAS_TOKEN"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).unwrap();
    let cfg = RingConfig {
        init_delay_ns: 60_000_000,
        hold_ns: 15_000_000,
        loss_timeout_ns: 150_000_000,
        regen_delay_ns: 25_000_000,
        lifetime_ns: 800_000_000,
        probe: ActionProbe::new().on("drop_pass", FaultAction::DropMessages { count: 1 }),
    };
    check_cross_backend("token-ring", &study, ring_factory(cfg), 0x716);
}
