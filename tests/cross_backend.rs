//! Cross-backend acceptance: every app in `crates/apps` implements the
//! unified `App` trait exactly once, and that one implementation runs the
//! same study on both the deterministic simulation backend and the
//! real-concurrency thread backend.
//!
//! For each app this test checks that
//! * the simulation backend produces *identical fault-injection intent*
//!   (which faults fired, per machine, per experiment) across repeated
//!   runs and across worker counts;
//! * both backends produce `ExperimentData` the analysis pipeline
//!   consumes, with at least one experiment's injections provably correct.

use loki::analysis::{analyze, analyze_one, AnalysisOptions};
use loki::apps::election::{election_factory, election_study, ElectionConfig};
use loki::apps::kvstore::{kv_factory, kv_study, KvConfig};
use loki::apps::token_ring::{ring_factory, ring_study, RingConfig};
use loki::core::campaign::{ExperimentData, ExperimentEnd};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::probe::{ActionProbe, FaultAction};
use loki::core::recorder::RecordKind;
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::harness::{
    run_study, run_study_with_workers, Backend, CampaignPipeline, SimHarnessConfig,
};
use loki::runtime::AppFactory;
use std::sync::Arc;

/// The fault names injected in one experiment, per machine in timeline
/// order — the campaign's injection *intent*, independent of timestamps.
fn injection_intent(study: &Study, data: &ExperimentData) -> Vec<(String, Vec<String>)> {
    data.timelines
        .iter()
        .map(|t| {
            let fired = t
                .records
                .iter()
                .filter_map(|r| match r.kind {
                    RecordKind::FaultInjection { fault } => {
                        Some(study.fault_names.name(fault).to_owned())
                    }
                    _ => None,
                })
                .collect();
            (study.sms.name(t.sm).to_owned(), fired)
        })
        .collect()
}

/// Runs one app's campaign on both backends and checks the acceptance
/// criteria above.
fn check_cross_backend(label: &str, study: &Arc<Study>, factory: AppFactory, seed: u64) {
    let sim_cfg = SimHarnessConfig::three_hosts(seed);

    // --- deterministic backend -------------------------------------------
    let first = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 1)
        .expect("valid campaign config");
    let rerun = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 1)
        .expect("valid campaign config");
    let parallel = run_study_with_workers(study, factory.clone(), &sim_cfg, 3, 2)
        .expect("valid campaign config");

    let intent: Vec<_> = first.iter().map(|d| injection_intent(study, d)).collect();
    assert!(
        intent.iter().flatten().any(|(_, fired)| !fired.is_empty()),
        "{label}: the sim campaign never injected"
    );
    let rerun_intent: Vec<_> = rerun.iter().map(|d| injection_intent(study, d)).collect();
    let parallel_intent: Vec<_> = parallel
        .iter()
        .map(|d| injection_intent(study, d))
        .collect();
    assert_eq!(intent, rerun_intent, "{label}: intent diverged across runs");
    assert_eq!(
        intent, parallel_intent,
        "{label}: intent diverged across worker counts"
    );

    let analyzed = analyze(study, first, &AnalysisOptions::default());
    assert!(
        analyzed.iter().any(|a| a.accepted()),
        "{label}: no sim experiment accepted by the analysis"
    );

    // --- thread backend: the same factory, real concurrency ---------------
    let thread_cfg = sim_cfg.clone().backend(Backend::Threads);
    let data = run_study(study, factory, &thread_cfg, 1).expect("valid campaign config");
    assert_eq!(data.len(), 1);
    let d = &data[0];
    assert_eq!(d.end, ExperimentEnd::Completed, "{label}: thread run hung");
    assert_eq!(
        d.timelines.len(),
        study.num_machines(),
        "{label}: missing thread timelines"
    );
    assert!(
        !d.pre_sync.is_empty() && !d.post_sync.is_empty(),
        "{label}: missing sync mini-phases"
    );
    assert!(
        d.total_injections() >= 1,
        "{label}: the thread campaign never injected"
    );
    let analyzed = analyze(study, data, &AnalysisOptions::default());
    assert!(
        analyzed.iter().any(|a| a.accepted()),
        "{label}: thread experiment rejected: {:?}",
        analyzed[0].verdict()
    );
}

/// The quick election campaign used by several tests: every machine faults
/// on its *own* LEAD entry, so whichever machine wins, an injection
/// happens — with zero notification latency, keeping it provably correct
/// on both backends.
fn quick_election() -> (Arc<Study>, AppFactory) {
    let mut def = election_study("cross-election");
    for (fault, sm) in [
        ("bfault1", "black"),
        ("yfault1", "yellow"),
        ("gfault1", "green"),
    ] {
        def = def.fault(sm, fault, FaultExpr::atom(sm, "LEAD"), Trigger::Once);
    }
    let study = Study::compile_arc(&def).unwrap();
    // Durations shortened (the thread backend runs in real time) but with
    // detection timeouts several times larger than any plausible CI
    // scheduling stall, so a loaded runner cannot fake a failure.
    let cfg = ElectionConfig {
        init_delay_ns: 60_000_000,
        collect_timeout_ns: 80_000_000,
        heartbeat_interval_ns: 25_000_000,
        heartbeat_timeout_ns: 150_000_000,
        lifetime_ns: 1_000_000_000,
        restart_done_delay_ns: 15_000_000,
        ..Default::default()
    };
    (study, election_factory(cfg))
}

#[test]
fn election_runs_on_both_backends() {
    let (study, factory) = quick_election();
    check_cross_backend("election", &study, factory, 0xE1EC);
}

/// A one-step study measure over the election campaign: how long `black`
/// held LEAD.
fn lead_measure() -> StudyMeasure {
    StudyMeasure::new("black-lead").step(MeasureStep {
        subset: SubsetSel::All,
        predicate: Predicate::state("black", "LEAD"),
        observation: ObservationFn::total_true(),
    })
}

/// The pipeline acceptance test: the streaming pipeline must be
/// *unobservable* in the results — byte-identical to the batch
/// `run_study` → `analyze` → measure fold, for every worker count — while
/// never holding more than O(workers) raw `ExperimentData` in memory
/// (asserted via the pipeline's retention gauge). Workers claim
/// experiments from a shared index counter (work stealing), so which
/// worker runs which experiment varies with scheduling; the sweep below
/// pins that the *results* nevertheless stay byte-identical across every
/// worker count, including counts that do not divide the experiment count.
#[test]
fn pipeline_streaming_matches_batch_and_bounds_raw_retention() {
    let (study, factory) = quick_election();
    let cfg = SimHarnessConfig::three_hosts(0x51DE);
    let experiments = 6u32;

    // --- batch reference ---------------------------------------------------
    let raw = run_study_with_workers(&study, factory.clone(), &cfg, experiments, 1)
        .expect("valid campaign config");
    let batch = analyze(&study, raw, &AnalysisOptions::default());
    let batch_accepted = batch.iter().filter(|a| a.accepted()).count();
    let batch_values = lead_measure()
        .apply_all(
            &study,
            batch
                .iter()
                .filter(|a| a.accepted())
                .filter_map(|a| a.global()),
        )
        .unwrap();
    assert!(batch_accepted > 0, "campaign must accept something");

    for workers in [1usize, 2, 4, 5, 6] {
        let pipeline = CampaignPipeline::new(study.clone(), factory.clone(), cfg.clone());
        let mut acc = StudyAccumulator::new(lead_measure());
        let mut streamed = Vec::new();
        let summary = pipeline
            .run_with_workers(experiments, workers, |analyzed| {
                acc.push(&study, &analyzed).unwrap();
                streamed.push(analyzed);
            })
            .expect("valid campaign config");

        // Bounded memory: never more raw experiments alive than workers.
        assert!(
            (1..=workers).contains(&summary.peak_raw_retained),
            "workers {workers}: peak raw retention {}",
            summary.peak_raw_retained
        );

        // Sink sees every experiment exactly once, in index order.
        let indices: Vec<u32> = streamed.iter().map(|a| a.experiment).collect();
        assert_eq!(indices, (0..experiments).collect::<Vec<u32>>());

        // Byte-identical analyses, verdicts, and measure values.
        assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!(s, &b.analysis, "workers {workers}: analysis diverged");
        }
        assert_eq!(summary.accepted, batch_accepted);
        assert!(acc.is_drained());
        assert_eq!(acc.accepted(), batch_accepted);
        assert_eq!(acc.into_values(), batch_values, "workers {workers}");
    }
}

/// On the thread backend the interleavings are genuinely nondeterministic,
/// so streaming-vs-batch equality is checked on the *same* raw data: the
/// per-experiment `analyze_one` the pipeline fuses into its workers must be
/// byte-identical to the batch `analyze`. The pipeline itself must still
/// deliver every experiment once, in index order, with bounded retention.
#[test]
fn pipeline_analysis_is_faithful_on_the_thread_backend() {
    let (study, factory) = quick_election();
    let cfg = SimHarnessConfig::three_hosts(0x7EAD).backend(Backend::Threads);
    let opts = AnalysisOptions::default();

    let data =
        run_study_with_workers(&study, factory.clone(), &cfg, 2, 1).expect("valid campaign config");
    let batch = analyze(&study, data.clone(), &opts);
    for (d, b) in data.iter().zip(&batch) {
        assert_eq!(
            analyze_one(&study, d, &opts),
            b.analysis,
            "streamed analysis diverged from batch on experiment {}",
            d.experiment
        );
    }

    let pipeline = CampaignPipeline::new(study, factory, cfg);
    let mut indices = Vec::new();
    let summary = pipeline
        .run_with_workers(3, 2, |analyzed| indices.push(analyzed.experiment))
        .expect("valid campaign config");
    assert_eq!(indices, vec![0, 1, 2]);
    assert!(summary.peak_raw_retained <= 2);
    assert_eq!(summary.completed, 3, "thread experiments must complete");
}

#[test]
fn kvstore_runs_on_both_backends() {
    let def = kv_study("cross-kv", 3).fault(
        "kv1",
        "kill_primary",
        FaultExpr::atom("kv1", "PRIMARY"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).unwrap();
    let cfg = KvConfig {
        init_delay_ns: 60_000_000,
        op_interval_ns: 20_000_000,
        fail_timeout_ns: 120_000_000,
        promote_delay_ns: 30_000_000,
        lifetime_ns: 700_000_000,
        ..Default::default()
    };
    check_cross_backend("kvstore", &study, kv_factory(cfg), 0x4B56);
}

#[test]
fn token_ring_runs_on_both_backends() {
    // A communication fault instead of a crash: the holder drops its next
    // pass, the ring detects the drought and regenerates the token.
    let def = ring_study("cross-ring", 3).fault(
        "tr2",
        "drop_pass",
        FaultExpr::atom("tr2", "HAS_TOKEN"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).unwrap();
    let cfg = RingConfig {
        init_delay_ns: 60_000_000,
        hold_ns: 15_000_000,
        loss_timeout_ns: 150_000_000,
        regen_delay_ns: 25_000_000,
        lifetime_ns: 800_000_000,
        probe: ActionProbe::new().on("drop_pass", FaultAction::DropMessages { count: 1 }),
    };
    check_cross_backend("token-ring", &study, ring_factory(cfg), 0x716);
}
