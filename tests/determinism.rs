//! Campaign determinism: the parallel experiment executor must produce
//! results *byte-identical* to a forced single-worker run — same
//! timelines, same sync samples, same experiment ends, and, after the
//! analysis phase, the same verdict for every experiment. Each experiment
//! seeds its own simulation from `(study_seed, experiment_index)`, so the
//! worker count and thread scheduling must be unobservable in the output.

use loki::analysis::{analyze, AnalysisOptions};
use loki::apps::kvstore::{cascade_probe, cascade_study, kv_factory, storm_retry, KvConfig};
use loki::apps::token_ring::{ring_factory, ring_study, RingConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::probe::FaultAction;
use loki::core::study::Study;
use loki::runtime::harness::{run_study, run_study_with_workers, SimHarnessConfig};

/// The token-ring campaign of the acceptance scenario: a ring of three
/// members, killing the token holder once it provably holds the token.
fn ring_campaign() -> (std::sync::Arc<Study>, loki::runtime::AppFactory) {
    let def = ring_study("ring-determinism", 3).fault(
        "tr2",
        "kill_holder",
        FaultExpr::atom("tr2", "HAS_TOKEN"),
        Trigger::Once,
    );
    let study = Study::compile_arc(&def).expect("valid study");
    (study, ring_factory(RingConfig::default()))
}

#[test]
fn parallel_run_study_is_byte_identical_to_single_worker() {
    let (study, factory) = ring_campaign();
    let cfg = SimHarnessConfig::three_hosts(0xD5E7);
    let experiments = 12;

    let sequential = run_study_with_workers(&study, factory.clone(), &cfg, experiments, 1)
        .expect("valid campaign config");
    let parallel = run_study_with_workers(&study, factory.clone(), &cfg, experiments, 4)
        .expect("valid campaign config");
    // More workers than experiments must also work (workers are clamped).
    let oversubscribed = run_study_with_workers(&study, factory, &cfg, experiments, 64)
        .expect("valid campaign config");

    assert_eq!(sequential.len(), experiments as usize);
    assert_eq!(sequential, parallel, "worker count changed experiment data");
    assert_eq!(sequential, oversubscribed);

    // Experiments come back in index order.
    for (k, data) in sequential.iter().enumerate() {
        assert_eq!(data.experiment, k as u32);
    }
}

#[test]
fn parallel_and_sequential_agree_on_verdicts_and_timelines() {
    let (study, factory) = ring_campaign();
    let cfg = SimHarnessConfig::three_hosts(0xBEEF);
    let experiments = 8;

    let seq_data = run_study_with_workers(&study, factory.clone(), &cfg, experiments, 1)
        .expect("valid campaign config");
    let par_data = run_study_with_workers(&study, factory, &cfg, experiments, 3)
        .expect("valid campaign config");

    let opts = AnalysisOptions::default();
    let seq = analyze(&study, seq_data, &opts);
    let par = analyze(&study, par_data, &opts);

    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.accepted(), p.accepted(), "verdict diverged");
        assert_eq!(s.data.end, p.data.end, "experiment end diverged");
        assert_eq!(s.data.timelines, p.data.timelines, "timelines diverged");
        assert_eq!(s.data.pre_sync, p.data.pre_sync);
        assert_eq!(s.data.post_sync, p.data.post_sync);
    }
    // The campaign does something: at least one injection was attempted
    // and at least one experiment completed.
    assert!(seq.iter().any(|a| a.data.total_injections() > 0));
}

/// The cascading-failure study plus a lossy link and a gray node: every
/// class of network fault — partition, heal, probabilistic link fault,
/// slowdown — is armed in one campaign, with the retry storm generating
/// heavy traffic through the degraded fault plane.
fn netfault_campaign() -> (std::sync::Arc<Study>, loki::runtime::AppFactory) {
    let def = cascade_study("netfault-determinism")
        .fault(
            "kv2",
            "lossy",
            FaultExpr::atom("kv2", "BACKUP"),
            Trigger::Once,
        )
        .fault(
            "kv3",
            "slowpoke",
            FaultExpr::atom("kv3", "BACKUP"),
            Trigger::Once,
        );
    let study = Study::compile_arc(&def).expect("valid study");
    let probe = cascade_probe(true)
        .on(
            "lossy",
            FaultAction::LinkFault {
                from: "host2".to_owned(),
                to: "host3".to_owned(),
                drop_prob: 0.2,
                dup_prob: 0.1,
                reorder_ns: 200_000,
                corrupt_prob: 0.05,
                extra_latency_ns: 30_000,
            },
        )
        .on(
            "slowpoke",
            FaultAction::GrayNode {
                host: "host3".to_owned(),
                slowdown: 3.0,
            },
        );
    let cfg = KvConfig {
        retry: Some(storm_retry()),
        probe,
        ..KvConfig::default()
    };
    (study, kv_factory(cfg))
}

#[test]
fn net_fault_campaign_is_byte_identical_across_workers() {
    // Network faults route every probabilistic decision (drop, dup,
    // corrupt, reorder, gray slowdown) through the per-experiment
    // simulation RNG, so the worker split must stay unobservable even
    // with the full fault vocabulary armed at once.
    let (study, factory) = netfault_campaign();
    let cfg = SimHarnessConfig::three_hosts(0x10C1);
    let experiments = 8;

    let sequential = run_study_with_workers(&study, factory.clone(), &cfg, experiments, 1)
        .expect("valid campaign config");
    let parallel = run_study_with_workers(&study, factory, &cfg, experiments, 4)
        .expect("valid campaign config");

    assert_eq!(sequential.len(), experiments as usize);
    assert_eq!(
        sequential, parallel,
        "worker count changed net-fault experiment data"
    );
    // The campaign is not vacuous: the partition, heal, and link faults
    // all actually fired somewhere in the batch.
    assert!(sequential.iter().any(|d| d.total_injections() >= 3));
}

#[test]
fn run_study_defaults_respect_env_override() {
    // `run_study` resolves its worker count from the config (None here),
    // then the LOKI_WORKERS environment variable, then available
    // parallelism — whichever it picks, the result must match a single
    // worker. The other tests in this file don't read the environment, so
    // setting the variable here doesn't race them.
    let (study, factory) = ring_campaign();
    let cfg = SimHarnessConfig::three_hosts(7);
    let forced =
        run_study_with_workers(&study, factory.clone(), &cfg, 4, 1).expect("valid campaign config");

    std::env::set_var("LOKI_WORKERS", "3");
    let via_env = run_study(&study, factory.clone(), &cfg, 4).expect("valid campaign config");

    // Invalid worker counts are rejected loudly — a silent fallback would
    // run the campaign with a surprise worker count. Since the survivability
    // work these come back as typed `CampaignError`s, not panics.
    for bad in ["not-a-number", "0"] {
        std::env::set_var("LOKI_WORKERS", bad);
        let err = run_study(&study, factory.clone(), &cfg, 4)
            .expect_err(&format!("LOKI_WORKERS={bad:?} must be rejected"));
        assert!(err.to_string().contains("LOKI_WORKERS"), "{err}");
    }

    std::env::remove_var("LOKI_WORKERS");
    let auto = run_study(&study, factory, &cfg, 4).expect("valid campaign config");

    assert_eq!(via_env, forced);
    assert_eq!(auto, forced);
}
