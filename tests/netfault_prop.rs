//! Network-fault robustness property: *any* sequence of fault-plane
//! actions — partitions (including degenerate and invalid groupings),
//! heals, probabilistic link faults, gray nodes, unknown hosts — must
//! yield a typed [`ExperimentEnd`], never a stall or a panic. A
//! partition that is never healed is the hard case: nodes cut off from
//! the central daemon can't report, so termination leans on the
//! central daemon's timeout tearing the fault plane down. Every run is
//! also replayed to pin that arbitrary actions stay deterministic.

use loki::apps::kvstore::{kv_factory, KvConfig, CASCADE_HEAL, CASCADE_NETSPLIT};
use loki::core::campaign::ExperimentEnd;
use loki::core::probe::{ActionProbe, FaultAction};
use loki::core::study::Study;
use loki::runtime::harness::{run_experiment, SimHarnessConfig};
use proptest::prelude::*;

/// Maps a small index onto the three real hosts plus one deliberately
/// unknown name, so strategies routinely exercise the plane's rejection
/// path (unknown hosts fail the application, they must not wedge it).
fn host_name(idx: u8) -> String {
    match idx % 4 {
        0 => "host1",
        1 => "host2",
        2 => "host3",
        _ => "host9",
    }
    .to_owned()
}

/// A fixed menu of partition groupings: each single-host isolation, full
/// three-way split, the degenerate everyone-together grouping, and one
/// grouping naming an unknown host (rejected by the plane).
fn partition_groups(idx: u8) -> Vec<Vec<String>> {
    let g = |names: &[&str]| names.iter().map(|n| (*n).to_owned()).collect::<Vec<_>>();
    match idx % 6 {
        0 => vec![g(&["host1"]), g(&["host2", "host3"])],
        1 => vec![g(&["host2"]), g(&["host1", "host3"])],
        2 => vec![g(&["host3"]), g(&["host1", "host2"])],
        3 => vec![g(&["host1"]), g(&["host2"]), g(&["host3"])],
        4 => vec![g(&["host1", "host2", "host3"])],
        _ => vec![g(&["host1"]), g(&["host9"])],
    }
}

/// Generates one arbitrary fault-plane action, valid or not.
fn action_strategy() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        (any::<u8>()).prop_map(|g| FaultAction::Partition {
            groups: partition_groups(g),
        }),
        Just(FaultAction::Heal),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>()
        )
            .prop_map(|(drop, dup, corrupt, from, to)| FaultAction::LinkFault {
                from: host_name(from),
                to: host_name(to),
                drop_prob: f64::from(drop) / 255.0,
                dup_prob: f64::from(dup) / 255.0,
                reorder_ns: u64::from(drop) * 10_000,
                corrupt_prob: f64::from(corrupt) / 255.0,
                extra_latency_ns: u64::from(corrupt) * 5_000,
            }),
        (any::<u8>(), any::<u8>()).prop_map(|(host, slow)| FaultAction::GrayNode {
            host: host_name(host),
            slowdown: 1.0 + f64::from(slow) / 16.0,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn random_net_fault_sequences_never_stall(
        netsplit_action in action_strategy(),
        heal_action in action_strategy(),
        seed in any::<u64>(),
    ) {
        use loki::apps::kvstore::cascade_study;

        // The cascade study's two state-triggered fault slots, rebound to
        // arbitrary actions: `netsplit` fires as soon as kv1 is PRIMARY,
        // `heal_net` only if a successor ever promotes — so the second
        // action may never fire at all, which is part of the property.
        let def = cascade_study("netfault-prop");
        let study = Study::compile_arc(&def).expect("valid study");
        let probe = ActionProbe::new()
            .on(CASCADE_NETSPLIT, netsplit_action)
            .on(CASCADE_HEAL, heal_action);
        let app_cfg = KvConfig {
            probe,
            ..KvConfig::default()
        };
        let factory = kv_factory(app_cfg);
        let cfg = SimHarnessConfig::three_hosts(seed);

        let data = run_experiment(&study, factory.clone(), &cfg, 0);
        prop_assert!(matches!(
            data.end,
            ExperimentEnd::Completed | ExperimentEnd::TimedOut | ExperimentEnd::Aborted
        ));
        prop_assert!(
            !matches!(data.end, ExperimentEnd::Failed(_)),
            "fault-plane runs must never trip containment"
        );

        // Arbitrary fault-plane states must replay byte-identically.
        let replay = run_experiment(&study, factory, &cfg, 0);
        prop_assert_eq!(data, replay);
    }
}
