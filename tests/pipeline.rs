//! Cross-crate integration tests: the full Loki pipeline
//! (specification → runtime → off-line analysis → measures).

use loki::analysis::{accepted_timelines, analyze, AnalysisOptions, MissingPolicy};
use loki::apps::election::{election_factory, election_study, ElectionConfig};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::spec::{StateMachineSpec, StudyDef};
use loki::core::study::Study;
use loki::measure::prelude::*;
use loki::runtime::daemons::{RestartPlacement, RestartPolicy};
use loki::runtime::harness::{run_experiment, run_study, SimHarnessConfig};
use loki::runtime::AppFactory;
use loki::runtime::{App, NodeCtx, Payload};
use std::rc::Rc;
use std::sync::Arc;

/// A deterministic worker/observer pair used by several tests.
fn wo_study(busy_ms: u64) -> (Arc<Study>, AppFactory) {
    let def = StudyDef::new("wo")
        .machine(
            StateMachineSpec::builder("worker")
                .states(&["INIT", "BUSY", "DONE"])
                .events(&["GO", "FINISH"])
                .state("INIT", &["observer"], &[("GO", "BUSY")])
                .state("BUSY", &["observer"], &[("FINISH", "DONE")])
                .state("DONE", &["observer"], &[])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("observer")
                .states(&["WATCH"])
                .events(&["STOP"])
                .state("WATCH", &[], &[("STOP", "EXIT")])
                .build(),
        )
        .fault(
            "observer",
            "f",
            FaultExpr::atom("worker", "BUSY"),
            Trigger::Once,
        )
        .place("worker", "host1")
        .place("observer", "host2");
    let study = Study::compile_arc(&def).unwrap();

    struct Worker {
        busy_ns: u64,
    }
    impl App for Worker {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
            ctx.notify_event("INIT").unwrap();
            ctx.set_timer(100_000_000, 1);
        }
        fn on_app_message(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            _from: loki::core::ids::SmId,
            _p: Payload,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
            match tag {
                1 => {
                    ctx.notify_event("GO").unwrap();
                    ctx.set_timer(self.busy_ns, 2);
                }
                2 => {
                    ctx.notify_event("FINISH").unwrap();
                    ctx.exit();
                }
                _ => {}
            }
        }
        fn on_fault(&mut self, _ctx: &mut NodeCtx<'_>, _fault: &str) {}
    }
    struct Observer;
    impl App for Observer {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _restarted: bool) {
            ctx.notify_event("WATCH").unwrap();
            ctx.set_timer(500_000_000, 1);
        }
        fn on_app_message(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            _from: loki::core::ids::SmId,
            _p: Payload,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
            if tag == 1 {
                ctx.notify_event("STOP").unwrap();
                ctx.exit();
            }
        }
        fn on_fault(&mut self, _ctx: &mut NodeCtx<'_>, _fault: &str) {}
    }

    let busy_ns = busy_ms * 1_000_000;
    let factory: AppFactory = Arc::new(move |study: &Study, sm| -> Box<dyn App> {
        if study.sms.name(sm) == "worker" {
            Box::new(Worker { busy_ns })
        } else {
            Box::new(Observer)
        }
    });
    (study, factory)
}

fn harness(seed: u64) -> SimHarnessConfig {
    let mut h = SimHarnessConfig::three_hosts(seed);
    h.hosts.truncate(2);
    h
}

#[test]
fn full_pipeline_accepts_long_states_and_rejects_short_ones() {
    // 60 ms of BUSY with a 10 ms timeslice: the notification always makes
    // it in time; analysis accepts.
    let (study, factory) = wo_study(60);
    let data = run_study(&study, factory, &harness(1), 8).expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let long_accepted = analyzed.iter().filter(|a| a.accepted()).count();
    assert!(
        long_accepted >= 6,
        "long states accepted: {long_accepted}/8"
    );

    // 2 ms of BUSY: the stale partial view makes most injections land
    // after BUSY ended; analysis must catch them.
    let (study, factory) = wo_study(2);
    let data = run_study(&study, factory, &harness(2), 8).expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let short_accepted = analyzed.iter().filter(|a| a.accepted()).count();
    assert!(
        short_accepted <= 2,
        "short states mostly rejected: {short_accepted}/8"
    );

    // Crucially: the injections *happened* in both cases — only the
    // analysis distinguishes them (the whole point of the thesis).
    assert!(long_accepted > short_accepted);
}

#[test]
fn pipeline_is_deterministic() {
    let (study, factory) = wo_study(40);
    let a = run_experiment(&study, factory.clone(), &harness(7), 0);
    let b = run_experiment(&study, factory, &harness(7), 0);
    assert_eq!(a, b);
}

#[test]
fn measure_values_track_ground_truth() {
    let (study, factory) = wo_study(40);
    let data = run_study(&study, factory, &harness(3), 6).expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let accepted = accepted_timelines(&analyzed);
    assert!(!accepted.is_empty());
    let m = StudyMeasure::new("busy").step(MeasureStep {
        subset: SubsetSel::All,
        predicate: Predicate::state("worker", "BUSY"),
        observation: ObservationFn::total_true(),
    });
    let values = m.apply_all(&study, accepted.iter().copied()).unwrap();
    let stats = MomentStats::from_sample(&values).unwrap();
    // The worker is BUSY for exactly 40 ms of its own clock; projected
    // durations may differ by the clock drift (~100 ppm) and bound
    // midpoints, so allow a small tolerance.
    assert!(
        (stats.mean() - 40.0).abs() < 1.0,
        "measured busy time {} ms",
        stats.mean()
    );
}

#[test]
fn election_campaign_end_to_end_with_restart() {
    let def = election_study("study1").fault(
        "black",
        "bfault1",
        FaultExpr::atom("black", "LEAD"),
        Trigger::Once,
    );
    let study = Arc::new(Study::compile(&def).unwrap());
    let mut h = SimHarnessConfig::three_hosts(41);
    h.restart = Some(RestartPolicy {
        probability: 1.0,
        delay_ns: 60_000_000,
        max_restarts: 1,
        placement: RestartPlacement::NextHost,
    });
    let data = run_study(&study, election_factory(ElectionConfig::default()), &h, 10)
        .expect("valid campaign config");
    let analyzed = analyze(&study, data, &AnalysisOptions::default());
    let accepted = accepted_timelines(&analyzed);
    assert!(accepted.len() >= 8, "accepted {}/10", accepted.len());

    // §5.8 coverage measure: every crash must be covered (restart prob 1).
    let ever = |tl: &loki::measure::PredicateTimeline| {
        let (lo, hi) = tl.window;
        (tl.total_true(lo, hi) > 0.0) as u32 as f64
    };
    let m = StudyMeasure::new("coverage")
        .step(MeasureStep {
            subset: SubsetSel::All,
            predicate: Predicate::state("black", "CRASH"),
            observation: ObservationFn::total_true(),
        })
        .step(MeasureStep {
            subset: SubsetSel::Gt(0.0),
            predicate: Predicate::state("black", "RESTART_SM"),
            observation: ObservationFn::User(Rc::new(ever)),
        });
    let values = m.apply_all(&study, accepted.iter().copied()).unwrap();
    for v in &values {
        assert_eq!(*v, 1.0, "restart probability 1.0 means full coverage");
    }
}

#[test]
fn missing_policy_distinguishes_unfired_faults() {
    // With a 1 ms BUSY window and 10 ms timeslices, some experiments see
    // no injection at all (the notification arrives after the observer's
    // view stopped mattering). Under Fail they are rejected; under Ignore
    // the never-injected ones are tolerated (the injected-but-late ones
    // are still rejected).
    let (study, factory) = wo_study(1);
    let data = run_study(&study, factory, &harness(5), 10).expect("valid campaign config");
    let with_fail = analyze(
        &study,
        data.clone(),
        &AnalysisOptions {
            missing: MissingPolicy::Fail,
            ..Default::default()
        },
    );
    let with_ignore = analyze(
        &study,
        data,
        &AnalysisOptions {
            missing: MissingPolicy::Ignore,
            ..Default::default()
        },
    );
    let fail_count = with_fail.iter().filter(|a| a.accepted()).count();
    let ignore_count = with_ignore.iter().filter(|a| a.accepted()).count();
    assert!(ignore_count >= fail_count);
}

#[test]
fn timelines_roundtrip_through_on_disk_format_and_reanalyze() {
    use loki::spec::timeline_file;
    let (study, factory) = wo_study(50);
    let data = run_experiment(&study, factory, &harness(6), 0);

    // Write every local timeline to the thesis's file format and read it
    // back; the analysis of the round-tripped data must agree.
    let mut roundtripped = data.clone();
    // Hosts written to disk already live in the study-run table, so
    // re-interning on parse reproduces the same ids.
    let mut symbols = (*data.symbols).clone();
    roundtripped.timelines = data
        .timelines
        .iter()
        .map(|t| {
            let text = timeline_file::write(&study, &data.symbols, t);
            timeline_file::parse(&study, &mut symbols, &text).expect("roundtrip parses")
        })
        .collect();
    assert_eq!(roundtripped.timelines, data.timelines);

    let a = analyze(&study, vec![data], &AnalysisOptions::default());
    let b = analyze(&study, vec![roundtripped], &AnalysisOptions::default());
    assert_eq!(a[0].accepted(), b[0].accepted());
}
