//! The reproduction's central soundness property: the analysis phase never
//! accepts an experiment whose injection did **not** truly land in the
//! targeted global state.
//!
//! Oracle construction: both hosts get *ideal* clocks (offset 0, drift 0),
//! so every recorded local time equals true physical time, and ground
//! truth is directly computable from the timelines — the injection is
//! truly correct iff its timestamp lies within the target's
//! `[ARMED entry, ARMED exit]` window. The analysis, of course, does not
//! know the clocks are ideal: it estimates (α, β) bounds from sync
//! messages like always. Soundness requires
//! `accepted ⇒ truly correct` for every seed and state-residence time;
//! completeness (accepting most truly-correct ones) is measured but only
//! loosely asserted, since the check is deliberately conservative.

use loki::analysis::{analyze, AnalysisOptions, MissingPolicy};
use loki::core::fault::{FaultExpr, Trigger};
use loki::core::recorder::RecordKind;
use loki::core::spec::{StateMachineSpec, StudyDef};
use loki::core::study::Study;
use loki::runtime::harness::{run_study, SimHarnessConfig};
use loki::runtime::messages::NotifyRouting;
use loki::runtime::AppFactory;
use loki::runtime::{App, NodeCtx, Payload};
use loki::sim::config::HostConfig;
use std::sync::Arc;

struct Target {
    settle_ns: u64,
    hold_ns: u64,
}
impl App for Target {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _: bool) {
        ctx.notify_event("SETUP").unwrap();
        ctx.set_timer(self.settle_ns, 1);
    }
    fn on_app_message(&mut self, _: &mut NodeCtx<'_>, _: loki::core::ids::SmId, _: Payload) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        match tag {
            1 => {
                ctx.notify_event("ENTER").unwrap();
                ctx.set_timer(self.hold_ns, 2);
            }
            2 => {
                ctx.notify_event("LEAVE").unwrap();
                ctx.set_timer(50_000_000, 3);
            }
            3 => {
                let _ = ctx.notify_event("DONE");
                ctx.exit();
            }
            _ => {}
        }
    }
    fn on_fault(&mut self, _: &mut NodeCtx<'_>, _: &str) {}
}

struct Watcher {
    lifetime_ns: u64,
}
impl App for Watcher {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>, _: bool) {
        ctx.notify_event("WATCH").unwrap();
        ctx.set_timer(self.lifetime_ns, 1);
    }
    fn on_app_message(&mut self, _: &mut NodeCtx<'_>, _: loki::core::ids::SmId, _: Payload) {}
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == 1 {
            let _ = ctx.notify_event("DONE");
            ctx.exit();
        }
    }
    fn on_fault(&mut self, _: &mut NodeCtx<'_>, _: &str) {}
}

fn oracle_study() -> Arc<Study> {
    let def = StudyDef::new("oracle")
        .machine(
            StateMachineSpec::builder("target")
                .states(&["SETUP", "ARMED", "COOL"])
                .events(&["ENTER", "LEAVE", "DONE"])
                .state(
                    "SETUP",
                    &["watcher"],
                    &[("ENTER", "ARMED"), ("DONE", "EXIT")],
                )
                .state("ARMED", &["watcher"], &[("LEAVE", "COOL")])
                .state("COOL", &["watcher"], &[("DONE", "EXIT")])
                .build(),
        )
        .machine(
            StateMachineSpec::builder("watcher")
                .states(&["WATCH"])
                .events(&["DONE"])
                .state("WATCH", &[], &[("DONE", "EXIT")])
                .build(),
        )
        .fault(
            "watcher",
            "f",
            FaultExpr::atom("target", "ARMED"),
            Trigger::Once,
        )
        .place("target", "host1")
        .place("watcher", "host2");
    Study::compile_arc(&def).unwrap()
}

/// Ground truth on ideal clocks: was the injection within [enter, leave]?
fn truly_correct(study: &Study, data: &loki::core::ExperimentData) -> Option<bool> {
    let armed = study.states.lookup("ARMED").unwrap();
    let cool = study.states.lookup("COOL").unwrap();
    let target = data.timeline_for(study.sm_id("target")?)?;
    let watcher = data.timeline_for(study.sm_id("watcher")?)?;
    let mut enter = None;
    let mut leave = None;
    for r in &target.records {
        if let RecordKind::StateChange { new_state, .. } = r.kind {
            if new_state == armed {
                enter = Some(r.time.as_nanos());
            } else if new_state == cool {
                leave = Some(r.time.as_nanos());
            }
        }
    }
    let injection = watcher.records.iter().find_map(|r| match r.kind {
        RecordKind::FaultInjection { .. } => Some(r.time.as_nanos()),
        _ => None,
    })?;
    Some(enter? <= injection && injection <= leave?)
}

#[test]
fn analysis_acceptance_is_sound_against_ground_truth() {
    let study = oracle_study();
    let hold_values_ms = [1u64, 3, 6, 10, 15, 25];
    let mut accepted_total = 0usize;
    let mut truly_correct_total = 0usize;
    let mut injected_total = 0usize;
    let mut total = 0usize;

    for (i, hold_ms) in hold_values_ms.iter().enumerate() {
        let hold_ns = hold_ms * 1_000_000;
        let factory: AppFactory = Arc::new(move |study: &Study, sm| -> Box<dyn App> {
            if study.sms.name(sm) == "target" {
                Box::new(Target {
                    settle_ns: 150_000_000,
                    hold_ns,
                })
            } else {
                Box::new(Watcher {
                    lifetime_ns: 450_000_000,
                })
            }
        });
        // Ideal clocks on both hosts: the oracle sees true times.
        let harness = SimHarnessConfig {
            hosts: vec![
                HostConfig::new("host1").timeslice_ns(10_000_000),
                HostConfig::new("host2").timeslice_ns(10_000_000),
            ],
            routing: NotifyRouting::Direct,
            seed: 0x50D0 + i as u64,
            ..Default::default()
        };
        let experiments = run_study(&study, factory, &harness, 12).expect("valid campaign config");
        let truths: Vec<Option<bool>> = experiments
            .iter()
            .map(|d| truly_correct(&study, d))
            .collect();
        let analyzed = analyze(
            &study,
            experiments,
            &AnalysisOptions {
                missing: MissingPolicy::Ignore,
                ..Default::default()
            },
        );
        for (a, truth) in analyzed.iter().zip(&truths) {
            total += 1;
            if truth.is_some() {
                injected_total += 1;
            }
            if *truth == Some(true) {
                truly_correct_total += 1;
            }
            // Only consider the injection verdicts (MissingPolicy::Ignore
            // keeps never-injected experiments accepted with zero checks).
            let has_injection = a.verdict().map(|v| !v.checks.is_empty()).unwrap_or(false);
            if a.accepted() && has_injection {
                accepted_total += 1;
                // SOUNDNESS: accepted ⇒ truly correct.
                assert_eq!(
                    *truth,
                    Some(true),
                    "analysis accepted an injection that truly missed (hold {hold_ms} ms, exp {})",
                    a.data.experiment
                );
            }
        }
    }

    // Sanity: the sweep exercises both regimes.
    assert!(injected_total > 0);
    assert!(accepted_total > 0, "some experiments must be accepted");
    assert!(
        truly_correct_total > accepted_total / 2,
        "conservatism should not be vacuous (accepted {accepted_total}, true {truly_correct_total}, total {total})"
    );
    // COMPLETENESS (loose): with long holds most truly-correct injections
    // are provable; globally at least a third must be accepted.
    assert!(
        accepted_total * 3 >= truly_correct_total,
        "too conservative: accepted {accepted_total} of {truly_correct_total} truly correct"
    );
}
