//! Campaign survivability acceptance: arbitrary per-experiment failure —
//! application panics, runaway experiments cut off by deterministic
//! budgets, hung node threads — must never take down the campaign, leak
//! state into another experiment, or perturb the healthy experiments'
//! results. The chaos workload ([`loki::apps::chaos`]) draws one RNG roll
//! per tick in *every* configuration, so a disarmed (never-panicking) run
//! is the byte-identical baseline for each experiment the armed run
//! completes — at every workers × batch combination.

use loki::apps::chaos::{chaos_factory, chaos_study, ChaosConfig, CHAOS_PANIC};
use loki::core::campaign::{ExperimentEnd, ExperimentFailure};
use loki::core::study::Study;
use loki::runtime::harness::{Backend, CampaignPipeline, SimHarnessConfig};
use proptest::prelude::*;
use std::sync::Once;

/// Installs a panic hook that suppresses the expected chaos unwinds (the
/// harness catches them; the default hook would still spam stderr with
/// hundreds of backtraces) while delegating everything else.
fn quiet_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains(CHAOS_PANIC))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains(CHAOS_PANIC));
            if !expected {
                previous(info);
            }
        }));
    });
}

/// A chaos campaign configuration: panics and hangs both armed, with a
/// virtual-time budget well above the healthy lifetime (6 ticks × 50 ms)
/// but far below the central daemon's 60 s timeout, so hung experiments
/// fail fast and deterministically.
fn chaos_harness(seed: u64) -> SimHarnessConfig {
    let mut cfg = SimHarnessConfig::three_hosts(seed);
    cfg.max_virtual_time = Some(3_000_000_000); // 3 s virtual
    cfg
}

fn chaos_cfg(armed: bool) -> ChaosConfig {
    ChaosConfig {
        panic_p: 0.03,
        hang_p: 0.02,
        armed,
        ..ChaosConfig::default()
    }
}

#[test]
fn survivors_are_byte_identical_to_the_disarmed_baseline() {
    quiet_chaos_panics();
    let study = Study::compile_arc(&chaos_study("chaos-survive", 3)).unwrap();
    let experiments = 24u32;

    // Baseline: same seeds, same budgets, same RNG stream — panic rolls
    // are simply ignored. Hang rolls still hang (and trip the budget), so
    // the baseline and armed runs disagree only on panicked experiments.
    let baseline_pipeline = CampaignPipeline::new(
        study.clone(),
        chaos_factory(chaos_cfg(false)),
        chaos_harness(0xC405),
    );
    let (baseline, _) = baseline_pipeline.collect(experiments).unwrap();

    let mut reference: Option<Vec<_>> = None;
    for workers in [1usize, 4] {
        for k in [1usize, 8] {
            let mut cfg = chaos_harness(0xC405);
            cfg.batch = Some(k);
            let pipeline =
                CampaignPipeline::new(study.clone(), chaos_factory(chaos_cfg(true)), cfg);
            let mut streamed = Vec::new();
            let summary = pipeline
                .run_with_workers(experiments, workers, |analyzed| streamed.push(analyzed))
                .expect("valid campaign config");

            // The campaign ran to completion and delivered every
            // experiment, in index order, despite the failures.
            let indices: Vec<u32> = streamed.iter().map(|a| a.experiment).collect();
            assert_eq!(indices, (0..experiments).collect::<Vec<u32>>());

            // All three populations are present, and the books balance.
            let panicked = streamed
                .iter()
                .filter(|a| a.end == ExperimentEnd::Failed(ExperimentFailure::AppPanic))
                .count();
            let budget_cut = streamed
                .iter()
                .filter(|a| a.end == ExperimentEnd::Failed(ExperimentFailure::BudgetVirtualTime))
                .count();
            let completed = streamed
                .iter()
                .filter(|a| a.end == ExperimentEnd::Completed)
                .count();
            assert!(panicked > 0, "workers={workers} K={k}: no panic fired");
            assert!(budget_cut > 0, "workers={workers} K={k}: no budget trip");
            assert!(completed > 0, "workers={workers} K={k}: nothing healthy");
            assert_eq!(summary.failed, panicked + budget_cut);
            assert_eq!(summary.completed, completed);
            // Failed experiments are never accepted.
            assert!(streamed
                .iter()
                .filter(|a| a.end.failure().is_some())
                .all(|a| !a.accepted()));
            // Every failure quarantined its world — and the deterministic
            // simulation never retries.
            assert_eq!(summary.quarantined_worlds, summary.failed);
            assert_eq!(summary.retried, 0);

            // Workers × batch is unobservable, failures included.
            match &reference {
                None => reference = Some(streamed.clone()),
                Some(reference) => assert_eq!(
                    &streamed, reference,
                    "workers={workers} K={k}: results diverged"
                ),
            }

            // Every experiment the armed run completed is byte-identical
            // to the disarmed baseline — a panic in experiment N was fully
            // contained, with no RNG or pooled-state leakage into
            // experiment N+1.
            for (armed, base) in streamed.iter().zip(&baseline) {
                if armed.end == ExperimentEnd::Completed {
                    assert_eq!(
                        armed, base,
                        "workers={workers} K={k}: healthy experiment {} perturbed",
                        armed.experiment
                    );
                }
            }
        }
    }
}

#[test]
fn event_budget_trips_identically_across_pool_shapes() {
    // Every experiment hangs immediately (hang_p = 1.0): the event-count
    // budget is the only thing that ends them, and its trip point must
    // depend only on (seed, experiment index).
    let study = Study::compile_arc(&chaos_study("chaos-budget", 3)).unwrap();
    let cfg_for = |k: usize| {
        let mut cfg = SimHarnessConfig::three_hosts(0xB1D6);
        cfg.max_events = Some(2_000);
        cfg.batch = Some(k);
        cfg
    };
    let chaos = ChaosConfig {
        hang_p: 1.0,
        ..ChaosConfig::default()
    };

    let mut reference: Option<Vec<_>> = None;
    for workers in [1usize, 4] {
        for k in [1usize, 8] {
            let pipeline =
                CampaignPipeline::new(study.clone(), chaos_factory(chaos.clone()), cfg_for(k));
            let mut streamed = Vec::new();
            let summary = pipeline
                .run_with_workers(8, workers, |analyzed| streamed.push(analyzed))
                .expect("valid campaign config");
            assert_eq!(summary.failed, 8);
            assert!(streamed
                .iter()
                .all(|a| a.end == ExperimentEnd::Failed(ExperimentFailure::BudgetEvents)));
            match &reference {
                None => reference = Some(streamed),
                Some(reference) => assert_eq!(
                    &streamed, reference,
                    "workers={workers} K={k}: budget trips diverged"
                ),
            }
        }
    }
}

#[test]
fn failure_reports_are_deduplicated_per_kind() {
    quiet_chaos_panics();
    let study = Study::compile_arc(&chaos_study("chaos-reports", 3)).unwrap();
    let pipeline = CampaignPipeline::new(
        study,
        chaos_factory(ChaosConfig {
            panic_p: 0.2,
            hang_p: 0.1,
            ..ChaosConfig::default()
        }),
        chaos_harness(0xDED0),
    );
    let summary = pipeline
        .run_with_workers(32, 2, |_| {})
        .expect("valid campaign config");
    assert!(summary.failed > 2, "campaign produced {}", summary.failed);

    // Dozens of failures, but one report per failure *shape* — and the
    // second drain comes back empty.
    let reports = pipeline.take_failure_reports();
    assert!(!reports.is_empty());
    assert!(reports.len() <= 2, "reports not deduplicated: {reports:?}");
    assert!(reports.iter().any(|r| r.contains("application panic")));
    assert!(pipeline.take_failure_reports().is_empty());
}

#[test]
fn thread_backend_contains_panics_and_retries() {
    quiet_chaos_panics();
    let study = Study::compile_arc(&chaos_study("chaos-threads", 3)).unwrap();
    // Every node panics on its first tick, every attempt.
    let chaos = ChaosConfig {
        panic_p: 1.0,
        ..ChaosConfig::default()
    };
    let mut cfg = SimHarnessConfig::three_hosts(0x7EAD).backend(Backend::Threads);
    cfg.retry.max_retries = 1;
    cfg.retry.backoff = std::time::Duration::from_millis(1);

    let pipeline = CampaignPipeline::new(study, chaos_factory(chaos), cfg);
    let (results, summary) = pipeline.collect(2).expect("valid campaign config");

    assert_eq!(summary.experiments, 2);
    assert_eq!(summary.failed, 2, "panics must surface as typed failures");
    // Each failed experiment was retried once (and failed again).
    assert_eq!(summary.retried, 2);
    for analyzed in &results {
        assert_eq!(
            analyzed.end,
            ExperimentEnd::Failed(ExperimentFailure::AppPanic)
        );
        assert!(!analyzed.accepted());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn chaos_campaigns_stay_deterministic_under_any_mix(
        panic_p in 0.0f64..0.3,
        hang_p in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        quiet_chaos_panics();
        let study = Study::compile_arc(&chaos_study("chaos-prop", 3)).unwrap();
        let chaos = ChaosConfig { panic_p, hang_p, armed: true, ..ChaosConfig::default() };

        let run = |workers: usize, k: usize| {
            let mut cfg = chaos_harness(seed);
            cfg.batch = Some(k);
            let pipeline = CampaignPipeline::new(study.clone(), chaos_factory(chaos.clone()), cfg);
            let mut streamed = Vec::new();
            let summary = pipeline
                .run_with_workers(10, workers, |analyzed| streamed.push(analyzed))
                .expect("valid campaign config");
            (streamed, summary)
        };
        let (reference, reference_summary) = run(1, 1);
        let (wide, wide_summary) = run(4, 4);
        prop_assert_eq!(&reference, &wide, "worker/batch split observable");
        prop_assert_eq!(reference_summary.failed, wide_summary.failed);
        // Whatever the mix, every experiment ends in a typed state.
        for analyzed in &reference {
            prop_assert!(matches!(
                analyzed.end,
                ExperimentEnd::Completed | ExperimentEnd::TimedOut
                    | ExperimentEnd::Aborted | ExperimentEnd::Failed(_)
            ));
        }
    }
}

/// The CI chaos storm (`LOKI_CHAOS_SELFTEST=1`): a larger campaign with a
/// dense failure mix, re-checking the survivor-identity contract at scale.
#[test]
fn chaos_selftest_storm() {
    if std::env::var("LOKI_CHAOS_SELFTEST").as_deref() != Ok("1") {
        return;
    }
    quiet_chaos_panics();
    let study = Study::compile_arc(&chaos_study("chaos-storm", 6)).unwrap();
    let experiments = 200u32;

    let baseline_pipeline = CampaignPipeline::new(
        study.clone(),
        chaos_factory(ChaosConfig {
            panic_p: 0.02,
            hang_p: 0.012,
            armed: false,
            ..ChaosConfig::default()
        }),
        chaos_harness(0x57_02_13),
    );
    let (baseline, _) = baseline_pipeline.collect(experiments).unwrap();

    let mut cfg = chaos_harness(0x57_02_13);
    cfg.batch = Some(8);
    let pipeline = CampaignPipeline::new(
        study,
        chaos_factory(ChaosConfig {
            panic_p: 0.02,
            hang_p: 0.012,
            armed: true,
            ..ChaosConfig::default()
        }),
        cfg,
    );
    let (streamed, summary) = pipeline.collect(experiments).unwrap();

    assert_eq!(streamed.len(), experiments as usize);
    assert!(summary.failed > 10, "storm too tame: {}", summary.failed);
    assert!(summary.completed > 10, "storm killed everything");
    assert_eq!(summary.quarantined_worlds, summary.failed);
    for (armed, base) in streamed.iter().zip(&baseline) {
        if armed.end == ExperimentEnd::Completed {
            assert_eq!(armed, base, "survivor {} perturbed", armed.experiment);
        }
    }
}
