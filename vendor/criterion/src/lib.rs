//! Minimal criterion shim: runs benchmark closures under a wall-clock
//! timer and prints mean / min / max per iteration. No statistical
//! analysis, plots, or baselines — just enough to keep `cargo bench`
//! useful in an offline environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// always times per-batch).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many iterations per batch.
    SmallInput,
    /// Large setup output; few iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Measurement settings shared by [`Criterion`] and benchmark groups.
#[derive(Clone, Debug)]
struct Settings {
    /// Target number of timed samples.
    sample_size: usize,
    /// Warm-up iterations before timing.
    warmup_iters: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 60,
            warmup_iters: 3,
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &self.settings, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            settings,
        }
    }
}

/// A named group with its own settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &self.settings, &mut f);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] with the code under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warmup_iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Name filtering à la real criterion: positional CLI arguments are
/// substring filters (flags are ignored). `cargo bench -- campaign` runs
/// only benchmarks whose full name contains `campaign` — CI uses this to
/// smoke-run a single group quickly.
///
/// Public (a shim extension, not a real-criterion API) so benchmarks with
/// untimed setup passes can skip them when their group is filtered out.
pub fn is_filtered_out(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str()))
}

fn run_one(name: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    if is_filtered_out(name) {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: settings.sample_size,
        warmup_iters: settings.warmup_iters,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a group-runner function over the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
