//! Minimal parking_lot shim: `Mutex` and `RwLock` over `std::sync` with
//! the parking_lot calling convention (`lock()`/`read()`/`write()` return
//! guards directly; a poisoned lock panics, which matches parking_lot's
//! behavior of not tracking poison at all for the purposes of this
//! workspace — a panicked holder is a bug either way).

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
