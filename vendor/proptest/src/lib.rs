//! Minimal proptest shim: randomized property testing with the API subset
//! this workspace's tests use, but **without shrinking** — a failing case
//! reports its case index and the deterministic per-test seed instead.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`
//! * [`Strategy`] with `prop_map` and `boxed`; [`BoxedStrategy`]
//! * integer and float range strategies (`0..10u32`, `0.0f64..1.0`)
//! * [`any`] for primitives, [`Just`], tuple strategies (arity ≤ 6)
//! * `prop::collection::vec(strategy, size_range)`
//! * `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//!
//! Case generation is deterministic: the RNG seed is derived from the
//! test function's name, so failures reproduce across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use rand::Rng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection from a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several strategies per case (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy for any value of a primitive type.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// Generates arbitrary values of `T` (primitives).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection size specification: a count or a range of counts.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// String strategies: a `&str` is interpreted as a regex-subset pattern
/// and generates matching strings. Supported syntax: literal characters,
/// character classes `[a-zA-Z0-9_]` (ranges and singletons, no negation),
/// and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8
/// repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    use rand::Rng;
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern `{pattern}`");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        if chars[j] == '\\' {
                            j += 1;
                        }
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling `\\` in pattern `{pattern}`");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!alphabet.is_empty(), "empty class in pattern `{pattern}`");
        // An optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier lower bound"),
                    n.trim().parse::<usize>().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// The `prop::` namespace mirroring real proptest's module layout.
pub mod prop {
    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>`: `None` half the time.
        pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
            OptionStrategy { element }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                use rand::Rng;
                if rng.gen_bool(0.5) {
                    Some(self.element.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for vectors whose elements come from `element` and
        /// whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng;
                let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Derives a 64-bit seed from a test name (FNV-1a) so each test gets a
/// stable, distinct random stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `cases` generated inputs. Used by the `proptest!`
/// macro; not intended to be called directly.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng, u32) -> TestCaseResult,
) {
    let seed = seed_from_name(test_name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempt = 0u32;
    while case < config.cases {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(attempt as u64));
        match body(&mut rng, attempt) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case {case} (attempt {attempt}, \
                     seed {seed:#x}):\n{msg}"
                );
            }
        }
        attempt += 1;
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let body = |rng: &mut $crate::TestRng, _attempt: u32| -> $crate::TestCaseResult {
                    $(let $pat = $crate::Strategy::generate(&$strat, rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    body,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Discards the current case (uncounted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly picks one of the listed strategies each case. All arms must
/// generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0u32..1).prop_map(|_| 7u32), Just(9u32)]) {
            prop_assert!(x == 7 || x == 9);
            prop_assume!(x == 7);
            prop_assert_ne!(x, 9);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        crate::run_cases(
            "failures_panic_with_case_info",
            &crate::ProptestConfig::with_cases(4),
            |_, _| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
