//! Minimal rand shim with the API surface this workspace uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator, seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] — deterministic construction.
//! * [`Rng`] — `gen`, `gen_bool`, `gen_range` over integer and float
//!   ranges (half-open and inclusive).
//!
//! All randomness is fully deterministic for a given seed, which is what
//! the Loki simulation substrate requires. The streams differ from the
//! real `rand` crate's `StdRng` (ChaCha12) — everything in this workspace
//! seeds its own RNGs, so only internal consistency matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`] (automatically implemented).
pub trait Rng: RngCore {
    /// Samples a uniform value of a primitive type (integers over their
    /// full range, `f64`/`f32` in `[0, 1)`, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen`] can sample uniformly.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Uniform integer in `[0, span)` via Lemire's multiply-shift with
/// rejection (unbiased). `span == 0` means the full 64-bit range.
///
/// The rejection threshold `2^64 mod span` is below `span`, so draws with
/// `lo >= span` are accepted without computing it — the expensive 64-bit
/// division runs only with probability `span / 2^64` per draw. The
/// accepted sample sequence is identical to the always-divide form.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            let x = rng.next_u64();
            m = (x as u128).wrapping_mul(span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded from a 64-bit value via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion: recommended seeding for xoshiro.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: u64 = rng.gen_range(5..=5);
            assert_eq!(v, 5);
            let v: i32 = rng.gen_range(-3..4);
            assert!((-3..4).contains(&v));
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
