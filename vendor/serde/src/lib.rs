//! Minimal serde shim: `Serialize`/`Deserialize` as blanket marker traits
//! plus the no-op derive macros from `serde_derive`.
//!
//! The workspace annotates its data model with serde derives so the types
//! are ready for real serialization once the actual crates are available,
//! but nothing serializes today — so marker traits suffice. The blanket
//! impls mean every type satisfies `T: Serialize` bounds.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`, re-exporting the owned-deserialize marker.
pub mod de {
    pub use crate::DeserializeOwned;
}
