//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! shim. The workspace derives these traits on its data types but never
//! performs actual serialization, so the derives only need to accept the
//! item (including `#[serde(...)]` helper attributes) and emit nothing.
//! The blanket impls in the `serde` shim crate satisfy any trait bounds.

use proc_macro::TokenStream;

/// Accepts the derive input (and any `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the derive input (and any `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
